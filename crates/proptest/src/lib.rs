//! # scperf-proptest — an in-tree property-testing shim
//!
//! The workspace builds in fully offline environments, so the registry
//! `proptest` crate is not available. This crate reimplements the small
//! slice of its API that the scperf test suite uses — the [`Strategy`]
//! trait with `prop_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`any`], the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros, [`ProptestConfig`]
//! and [`TestCaseError`] — with a deterministic splitmix64 generator
//! seeded per test and case, so failures are reproducible run-to-run.
//!
//! It has **no shrinking**: a failing case reports its seed and case
//! index instead. Set `PROPTEST_CASES` to override the case count.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 random-number generator driving all
/// strategies. One instance is created per test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Returns the next 64 raw pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `func`.
    fn prop_map<O, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, func }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for AnyStrategy<T> {}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (integers and `bool`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                // Mild edge bias: boundaries find off-by-one bugs that
                // uniform draws miss.
                match rng.next_u64() % 32 {
                    0 => self.start,
                    1 => (self.end as i128 - 1) as $t,
                    _ => (lo + rng.below(span) as i128) as $t,
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                match rng.next_u64() % 32 {
                    0 => lo,
                    1 => hi,
                    _ => (lo as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Failure reported by a property body (via `prop_assert!` or `?`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated input was rejected (counted, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed-property error.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected-input error.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Test-loop driver used by the [`proptest!`] macro expansion.
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `body` for each case with a per-case deterministic RNG.
    /// Panics (failing the enclosing `#[test]`) on the first failure,
    /// reporting the case index and seed.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        let mut rejected = 0_u32;
        for case in 0..cases {
            let seed =
                fnv1a(name.as_bytes()) ^ 0x5851_f42d_4c95_7f2d_u64.wrapping_mul(case as u64 + 1);
            let mut rng = TestRng::new(seed);
            match body(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(reason)) => panic!(
                    "property '{name}' failed at case {case}/{cases} (seed {seed:#018x}):\n  \
                     {reason}"
                ),
            }
        }
        if rejected == cases && cases > 0 {
            panic!("property '{name}': every generated input was rejected");
        }
    }
}

/// Declares property tests. Mirrors the real `proptest!` item form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0_u32..100, b in 0_u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Internal item-muncher for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::runner::run_cases(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __out: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __out
            });
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Fails the enclosing property (returning [`TestCaseError::Fail`])
/// when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                        __l, __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                        __l, __r, format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Rejects the current input (not a failure) when the condition is
/// false, mirroring proptest's `prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// `use proptest::prelude::*;` — everything the test files need.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Namespace alias so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..2000 {
            let v = Strategy::generate(&(5_i32..10), &mut rng);
            assert!((5..10).contains(&v));
            let w = Strategy::generate(&(-3_i64..=3), &mut rng);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn edges_are_hit() {
        let mut rng = crate::TestRng::new(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..5000 {
            match Strategy::generate(&(0_u8..200), &mut rng) {
                0 => saw_lo = true,
                199 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi, "edge bias should hit both bounds");
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..500 {
            let v = Strategy::generate(&vec(any::<u32>(), 2..5), &mut rng);
            assert!((2..=4).contains(&v.len()));
            let w = Strategy::generate(&vec(0_u16..9, 7..=7), &mut rng);
            assert_eq!(w.len(), 7);
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = vec((any::<u8>(), -50_i32..50), 1..20);
        let a = Strategy::generate(&strat, &mut crate::TestRng::new(42));
        let b = Strategy::generate(&strat, &mut crate::TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(xs in vec(0_u32..100, 1..8), flag in any::<bool>()) {
            let total: u32 = xs.iter().sum();
            prop_assert!(total <= 99 * 7, "sum {} too large", total);
            prop_assert_eq!(flag, flag);
            let _mapped = Just(3_u8).prop_map(|x| x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_seed() {
        proptest! {
            fn always_fails(x in 0_u8..10) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }
}
