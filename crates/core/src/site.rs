//! Segment-site memoization: compile-and-replay of marked regions.
//!
//! The single-source methodology (§2) makes a straight-line region's
//! charge stream a pure function of (code, cost table): executing the
//! same loop body again charges exactly the same operations in the same
//! order. This module exploits that — the first execution of a marked
//! region records a [cost program](crate::prog) capturing what it
//! charged (including collapsed uniform loops and calls to nested
//! memoized regions); every repeat applies the program's compiled form
//! to the flat TLS slots in a handful of additions instead of charging
//! each operation live.
//!
//! A region is marked with [`g_loop!`](crate::g_loop) /
//! [`g_site!`](crate::g_site), which expand to a `static`
//! [`SegmentSite`] (one per *lexical* region, carrying a stable
//! `file:line:column` name so recorded programs serialize across
//! processes) plus a caller-supplied `u64` key. The full keying scheme
//! is `(site id, caller key, branch-outcome key)`: fold every value
//! that changes the region's charge stream — data-dependent trip
//! counts, branch outcomes computed in plain (uncharged) Rust — into
//! the key, and each executed path compiles into its own program
//! instead of falling back to live charging. A changed key is a cache
//! miss and the region records afresh.
//!
//! # When replay is bit-exact
//!
//! A compiled program is replayed as `acc += Δacc`. That is
//! bit-identical to re-charging per-op only when every partial sum is
//! exactly representable, which [`install`](crate::tls) guarantees by
//! enabling memoization solely for *integer-valued* cost tables
//! ([`CostTable::is_integral`](crate::CostTable::is_integral)) on
//! *sequential* resources; the recorder additionally refuses to store a
//! program whose `Σ count·cost` does not reproduce the measured `Δacc`
//! bit-for-bit. Fractional tables, parallel resources (whose DFG node
//! lineage spans iterations), replaying processes and the legacy
//! charging path all leave the region charging live — marking a region
//! is always sound, never mandatory.
//!
//! [`MemoMode::Verify`] re-charges every "hit" live anyway and asserts
//! the compiled program bit-equal — the debugging mode for validating
//! new region annotations.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::cost::OP_COUNT;
use crate::prog::{build_program, stable_site_hash, CompiledProg, LoopShape, RecEvent};
use crate::tls::{self, FAST, MEMO_OFF, MEMO_REPLAY, S_PASSIVE, S_SEQ};

/// Site-memoization policy for a session (see the module docs for when
/// replay actually engages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum MemoMode {
    /// Never memoize; every marked region charges live.
    Off = 0,
    /// Replay compiled cost programs on repeat executions (the default).
    #[default]
    Replay = 1,
    /// Replay *and* re-charge live, asserting the program bit-equal —
    /// slow, for validating region annotations.
    Verify = 2,
}

/// A lexical segment-site identity, declared `static` by the
/// [`g_loop!`](crate::g_loop) / [`g_site!`](crate::g_site) macros.
///
/// The numeric id is assigned lazily on first use from a global counter,
/// so declaring sites is free and ids are dense. Sites created with
/// [`SegmentSite::named`] additionally carry a *stable* identity — the
/// FNV-1a hash of their `file:line:column` name — under which their
/// recorded programs serialize into a shared
/// [`ProgramSet`](crate::ProgramSet); anonymous sites stay local to the
/// process.
pub struct SegmentSite {
    id: AtomicU32,
    stable: AtomicU64,
    name: &'static str,
}

/// Global site-id allocator; 0 means "not yet assigned".
static NEXT_SITE: AtomicU32 = AtomicU32::new(1);

impl SegmentSite {
    /// Creates an unassigned anonymous site (use in a `static`). Its
    /// programs never serialize — prefer [`SegmentSite::named`].
    #[must_use]
    pub const fn new() -> SegmentSite {
        SegmentSite::named("")
    }

    /// Creates a site with a stable lexical name (conventionally
    /// `concat!(file!(), ':', line!(), ':', column!())`), under whose
    /// hash the site's programs serialize and warm-start across
    /// processes.
    #[must_use]
    pub const fn named(name: &'static str) -> SegmentSite {
        SegmentSite {
            id: AtomicU32::new(0),
            stable: AtomicU64::new(0),
            name,
        }
    }

    /// This site's `(process id, stable hash)`, assigning both on first
    /// call.
    fn ids(&self) -> (u32, u64) {
        let id = self.id.load(Ordering::Acquire);
        if id != 0 {
            return (id, self.stable.load(Ordering::Relaxed));
        }
        let stable = stable_site_hash(self.name);
        self.stable.store(stable, Ordering::Relaxed);
        let fresh = NEXT_SITE.fetch_add(1, Ordering::Relaxed);
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Release, Ordering::Acquire)
        {
            Ok(_) => (fresh, stable),
            Err(won) => (won, stable),
        }
    }
}

impl Default for SegmentSite {
    fn default() -> SegmentSite {
        SegmentSite::new()
    }
}

/// Live in-flight recording state of a first execution.
struct RecordState {
    acc0: f64,
    counts0: [u64; OP_COUNT],
    gen0: u32,
    site: u32,
    stable: u64,
    key: u64,
    /// Start of this region's slice of the thread's event log.
    ev_base: usize,
    /// Whether this is a `g_loop!` whole-loop site (iteration-marked).
    looping: bool,
    /// Iterations seen so far (via [`SiteGuard::loop_iter`]).
    trips: u64,
    /// Count snapshot at the start of the second iteration (i.e. after
    /// exactly one body), for the uniform-loop collapse.
    body_snap: Option<[u64; OP_COUNT]>,
}

/// What the guard must do when the region ends.
enum Action {
    /// Memoization not engaged — nothing to do at exit.
    Inactive,
    /// Repeat execution: the compiled program was applied at entry and
    /// charging parked at `S_PASSIVE`; just un-park at exit.
    Replay { gen0: u32 },
    /// Repeat execution in verify mode: charge live, then assert the
    /// fresh delta bit-equal to the compiled program.
    Verify {
        acc0: f64,
        counts0: [u64; OP_COUNT],
        gen0: u32,
        idx: u32,
        site: u32,
        key: u64,
    },
    /// First execution: build and store the cost program at exit.
    Record(RecordState),
}

/// RAII guard for one execution of a memoized region; the exit logic
/// runs on drop, so `break` / `continue` / `?` / early `return` inside
/// the region stay safe.
pub struct SiteGuard {
    action: Action,
}

impl SiteGuard {
    /// Marks the start of one `g_loop!` iteration. Only meaningful on a
    /// recording guard created by [`site_enter_loop`]: it counts trips
    /// and snapshots the first iteration's charge rows so uniform loops
    /// collapse into a [`Loop`](crate::Instr::Loop) instruction.
    /// A no-op (one branch) on replaying or inactive guards.
    #[inline]
    pub fn loop_iter(&mut self) {
        if let Action::Record(rs) = &mut self.action {
            if !rs.looping {
                return;
            }
            rs.trips += 1;
            if rs.trips == 2 {
                rs.body_snap = Some(snapshot_counts());
            }
        }
    }
}

/// Enters a memoized region at `site` with the caller's `key` (fold any
/// value that changes the region's charge stream — trip counts,
/// data-dependent branch selectors — into the key).
///
/// Returns a guard whose drop ends the region. Usually called via
/// [`g_loop!`](crate::g_loop) / [`g_site!`](crate::g_site) rather than
/// directly.
#[must_use]
pub fn site_enter(site: &SegmentSite, key: u64) -> SiteGuard {
    enter(site, key, false)
}

/// [`site_enter`] for a whole `g_loop!`: the trip count is mixed into
/// the effective key (different trip counts are different programs) and
/// the guard tracks iterations via [`SiteGuard::loop_iter`] so uniform
/// bodies collapse into a single [`Loop`](crate::Instr::Loop)
/// instruction when recorded.
#[must_use]
pub fn site_enter_loop(site: &SegmentSite, key: u64, trips: u64) -> SiteGuard {
    enter(site, mix_key(key, trips), true)
}

/// Attempts a *native replay* of the memoized region at `site`: when a
/// compiled cost program exists for `(site, key)` and the session is in
/// [`MemoMode::Replay`], the program is charged to the flat TLS slots in
/// one step and `true` is returned — the caller then runs the region's
/// **native twin** (plain, uncharged Rust mirroring the annotated
/// body's data effects) instead of the annotated body. Repeat
/// executions thus run at native speed with *zero* per-op work, not
/// even the parked-state flag test that passive replay pays. `false`
/// means the caller must run the annotated body under [`site_enter`]
/// (which records, charges live, or verifies, depending on mode).
///
/// The caller owns twin equivalence: the native block must produce
/// exactly the data the annotated block would (same wrapping
/// arithmetic, same stores), must not charge, and must not cross a
/// segment boundary. [`g_twin!`](crate::g_twin) wires the two blocks
/// together. [`MemoMode::Verify`] always takes the annotated path, so
/// verify runs still validate recorded programs against live charging.
#[must_use]
pub fn site_try_native(site: &SegmentSite, key: u64) -> bool {
    let (memo, state) = FAST.with(|f| (f.memo.get(), f.state.get()));
    if state <= S_PASSIVE {
        // Charging is absent or parked under an enclosing replayed
        // region: the annotated body would charge nothing, so the
        // native twin is equivalent and cheaper regardless of mode.
        return true;
    }
    if memo != MEMO_REPLAY || state != S_SEQ {
        return false;
    }
    let (site_id, stable) = site.ids();
    tls::with(|c| {
        let hit = c.progs.lookup(site_id, key).or_else(|| {
            let costs = c.costs;
            c.progs.warm_fetch(site_id, stable, key, &costs)
        });
        let Some(idx) = hit else {
            return false;
        };
        // Bracket the hit for an enclosing recorder, exactly like the
        // passive-replay path, so outer programs reference this one as
        // a Call instruction.
        let counts_before = (c.rec_depth > 0 && stable != 0).then(snapshot_counts);
        let d_counts = {
            let prog = c.progs.compiled(idx);
            FAST.with(|f| {
                f.acc.set(f.acc.get() + prog.d_acc);
                for &(op, n) in prog.rows.iter() {
                    let cell = &f.counts[op as usize];
                    cell.set(cell.get() + n);
                }
                f.site_hits.set(f.site_hits.get() + 1);
            });
            counts_before.map(|_| prog.dense_counts())
        };
        if let (Some(counts_before), Some(d_counts)) = (counts_before, d_counts) {
            c.rec_events.push(RecEvent {
                site: stable,
                key,
                counts_before,
                d_counts,
            });
        }
        true
    })
    .unwrap_or(false)
}

/// Pure deterministic mix of a caller key and a trip count
/// (splitmix64-style finalizer), stable across processes so loop
/// programs serialize under reproducible keys.
fn mix_key(key: u64, trips: u64) -> u64 {
    let mut x = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(trips)
        .wrapping_add(0x243F_6A88_85A3_08D3);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

fn enter(site: &SegmentSite, key: u64, looping: bool) -> SiteGuard {
    let (memo, state, gen0, acc0) =
        FAST.with(|f| (f.memo.get(), f.state.get(), f.seg_gen.get(), f.acc.get()));
    // Engaged only for live sequential charging with memoization on:
    // inside an outer replayed region `state` is `S_PASSIVE`, so nested
    // regions are inert (the outer program already covers them).
    if memo == MEMO_OFF || state != S_SEQ {
        return SiteGuard {
            action: Action::Inactive,
        };
    }
    let (site_id, stable) = site.ids();
    let action = tls::with(|c| {
        let hit = c.progs.lookup(site_id, key).or_else(|| {
            let costs = c.costs;
            c.progs.warm_fetch(site_id, stable, key, &costs)
        });
        match hit {
            Some(idx) if memo == MEMO_REPLAY => {
                // If an enclosing region is recording, bracket this
                // replay so its program references ours as a Call.
                let counts_before = (c.rec_depth > 0 && stable != 0).then(snapshot_counts);
                let d_counts = {
                    let prog = c.progs.compiled(idx);
                    // Apply the program at entry: one f64 add plus one
                    // integer add per distinct op, then park charging.
                    FAST.with(|f| {
                        f.acc.set(f.acc.get() + prog.d_acc);
                        for &(op, n) in prog.rows.iter() {
                            let cell = &f.counts[op as usize];
                            cell.set(cell.get() + n);
                        }
                        f.site_hits.set(f.site_hits.get() + 1);
                        f.state.set(S_PASSIVE);
                    });
                    counts_before.map(|_| prog.dense_counts())
                };
                if let (Some(counts_before), Some(d_counts)) = (counts_before, d_counts) {
                    c.rec_events.push(RecEvent {
                        site: stable,
                        key,
                        counts_before,
                        d_counts,
                    });
                }
                Action::Replay { gen0 }
            }
            Some(idx) => {
                debug_assert_eq!(memo, tls::MEMO_VERIFY);
                Action::Verify {
                    acc0,
                    counts0: snapshot_counts(),
                    gen0,
                    idx,
                    site: site_id,
                    key,
                }
            }
            None => {
                c.rec_depth += 1;
                Action::Record(RecordState {
                    acc0,
                    counts0: snapshot_counts(),
                    gen0,
                    site: site_id,
                    stable,
                    key,
                    ev_base: c.rec_events.len(),
                    looping,
                    trips: 0,
                    body_snap: None,
                })
            }
        }
    })
    .unwrap_or(Action::Inactive);
    SiteGuard { action }
}

fn snapshot_counts() -> [u64; OP_COUNT] {
    FAST.with(|f| {
        let mut out = [0u64; OP_COUNT];
        for (o, c) in out.iter_mut().zip(f.counts.iter()) {
            *o = c.get();
        }
        out
    })
}

/// The flat `(Δacc, Δcounts)` between the current fast slots and the
/// entry snapshot. `None` on counter underflow, which means a segment
/// boundary drained the slots inside the region.
fn delta_since(acc0: f64, counts0: &[u64; OP_COUNT]) -> Option<(f64, [u64; OP_COUNT])> {
    FAST.with(|f| {
        let d_acc = f.acc.get() - acc0;
        let mut d_counts = [0u64; OP_COUNT];
        for i in 0..OP_COUNT {
            d_counts[i] = f.counts[i].get().checked_sub(counts0[i])?;
        }
        Some((d_acc, d_counts))
    })
}

impl Drop for SiteGuard {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.action, Action::Inactive) {
            Action::Inactive => {}
            Action::Replay { gen0 } => FAST.with(|f| {
                debug_assert_eq!(
                    f.seg_gen.get(),
                    gen0,
                    "segment boundary inside a replayed site region: the \
                     compiled program was recorded from a boundary-free \
                     execution"
                );
                f.state.set(S_SEQ);
            }),
            Action::Record(rs) => {
                let boundary_free =
                    FAST.with(|f| f.seg_gen.get() == rs.gen0 && f.state.get() == S_SEQ);
                let delta = if boundary_free {
                    delta_since(rs.acc0, &rs.counts0)
                } else {
                    // A wait/channel op fired inside the region (or the
                    // context changed): the delta spans segments and must
                    // not be cached. The region simply stays live.
                    None
                };
                let _ = tls::with(|c| {
                    c.rec_depth -= 1;
                    let events: Vec<RecEvent> = c.rec_events.drain(rs.ev_base..).collect();
                    let Some((d_acc, d_counts)) = delta else {
                        return;
                    };
                    let compiled = CompiledProg::from_flat(d_acc, &d_counts);
                    if !compiled.recomputes_exactly(&c.costs) {
                        // Replaying this program would not be bit-exact
                        // (fractional leak or > 2^53): stay live.
                        return;
                    }
                    let loop_shape = rs.body_snap.and_then(|snap| {
                        let mut body = [0u64; OP_COUNT];
                        for i in 0..OP_COUNT {
                            body[i] = snap[i].checked_sub(rs.counts0[i])?;
                        }
                        Some(LoopShape {
                            trips: rs.trips,
                            body,
                        })
                    });
                    let prog = build_program(&d_counts, &rs.counts0, &events, loop_shape);
                    c.progs
                        .insert_recorded(rs.site, rs.stable, rs.key, prog, compiled);
                    if c.rec_depth > 0 && rs.stable != 0 {
                        // Let the enclosing recording reference us as a
                        // Call instead of inlining our rows.
                        c.rec_events.push(RecEvent {
                            site: rs.stable,
                            key: rs.key,
                            counts_before: rs.counts0,
                            d_counts,
                        });
                    }
                    FAST.with(|f| f.site_misses.set(f.site_misses.get() + 1));
                });
            }
            Action::Verify {
                acc0,
                counts0,
                gen0,
                idx,
                site,
                key,
            } => {
                let boundary_free =
                    FAST.with(|f| f.seg_gen.get() == gen0 && f.state.get() == S_SEQ);
                if !boundary_free {
                    return;
                }
                let fresh = delta_since(acc0, &counts0);
                let stored = tls::with(|c| c.progs.compiled(idx).clone());
                if let (Some((d_acc, d_counts)), Some(stored)) = (fresh, stored) {
                    assert_eq!(
                        d_acc.to_bits(),
                        stored.d_acc.to_bits(),
                        "site {site} key {key}: live re-charge disagrees with \
                         the compiled Δacc — the region's charge stream is \
                         data-dependent; fold the discriminating value into \
                         the site key or leave the region unmarked"
                    );
                    assert_eq!(
                        d_counts,
                        stored.dense_counts(),
                        "site {site} key {key}: live re-charge disagrees with \
                         the compiled op counts — the region's charge stream \
                         is data-dependent"
                    );
                    FAST.with(|f| f.site_hits.set(f.site_hits.get() + 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostTable, Op};
    use crate::prog::Instr;
    use crate::resource::ResourceKind;
    use crate::tls::testutil::with_test_ctx_full;
    use crate::tls::{charge_branch, charge_op};

    fn int_table() -> CostTable {
        CostTable::from_pairs([(Op::Add, 2.0), (Op::Mul, 5.0), (Op::Branch, 1.0)])
    }

    fn body() {
        charge_op(Op::Add);
        charge_op(Op::Mul);
        charge_branch();
    }

    #[test]
    fn replay_matches_live_bit_for_bit() {
        let run = |memo| {
            with_test_ctx_full(
                ResourceKind::Sequential,
                int_table(),
                false,
                false,
                memo,
                || {
                    static SITE: SegmentSite = SegmentSite::new();
                    for _ in 0..10 {
                        let _g = site_enter(&SITE, 0);
                        body();
                    }
                },
            )
        };
        let live = run(MemoMode::Off);
        let memo = run(MemoMode::Replay);
        assert_eq!(live.acc.to_bits(), memo.acc.to_bits());
        assert_eq!(live.counts, memo.counts);
        assert_eq!(live.counts.get(Op::Add), 10);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                let mut hits = 0;
                let mut misses = 0;
                for _ in 0..7 {
                    let _g = site_enter(&SITE, 0);
                    body();
                }
                crate::tls::FAST.with(|f| {
                    hits = f.site_hits.get();
                    misses = f.site_misses.get();
                });
                assert_eq!(misses, 1, "first execution records");
                assert_eq!(hits, 6, "repeats replay");
            },
        );
        assert_eq!(ctx.progs.len(), 1);
    }

    #[test]
    fn distinct_keys_miss_separately() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for trip in [3u64, 5, 3, 5, 3] {
                    let _g = site_enter(&SITE, trip);
                    for _ in 0..trip {
                        charge_op(Op::Add);
                    }
                }
            },
        );
        // 3+5+3+5+3 Adds regardless of which executions replayed.
        assert_eq!(ctx.counts.get(Op::Add), 19);
        assert_eq!(ctx.acc, 38.0);
        assert_eq!(ctx.progs.len(), 2, "one program per key");
    }

    #[test]
    fn fractional_tables_never_replay() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            CostTable::figure3(), // Branch = 2.4
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for _ in 0..4 {
                    let _g = site_enter(&SITE, 0);
                    charge_branch();
                }
            },
        );
        assert!(ctx.progs.is_empty(), "fractional table must stay live");
        assert_eq!(ctx.counts.get(Op::Branch), 4);
    }

    #[test]
    fn verify_mode_accepts_deterministic_regions() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Verify,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for _ in 0..5 {
                    let _g = site_enter(&SITE, 0);
                    body();
                }
            },
        );
        assert_eq!(ctx.counts.get(Op::Add), 5);
        assert_eq!(ctx.acc, 5.0 * 8.0);
    }

    #[test]
    #[should_panic(expected = "data-dependent")]
    fn verify_mode_catches_data_dependent_regions() {
        let _ = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Verify,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for trip in [1u64, 2] {
                    // Same key, different charge stream: verify must trip.
                    let _g = site_enter(&SITE, 0);
                    for _ in 0..trip {
                        charge_op(Op::Add);
                    }
                }
            },
        );
    }

    #[test]
    fn nested_regions_stay_consistent() {
        let run = |memo| {
            with_test_ctx_full(
                ResourceKind::Sequential,
                int_table(),
                false,
                false,
                memo,
                || {
                    static OUTER: SegmentSite = SegmentSite::new();
                    static INNER: SegmentSite = SegmentSite::new();
                    for _ in 0..3 {
                        let _o = site_enter(&OUTER, 0);
                        charge_op(Op::Mul);
                        for _ in 0..4 {
                            let _i = site_enter(&INNER, 0);
                            charge_op(Op::Add);
                        }
                    }
                },
            )
        };
        let live = run(MemoMode::Off);
        let memo = run(MemoMode::Replay);
        assert_eq!(live.acc.to_bits(), memo.acc.to_bits());
        assert_eq!(live.counts, memo.counts);
        assert_eq!(live.counts.get(Op::Add), 12);
    }

    #[test]
    fn early_exit_from_region_is_safe() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for i in 0..6 {
                    let _g = site_enter(&SITE, 0);
                    charge_op(Op::Add);
                    if i % 2 == 0 {
                        continue; // drops the guard mid-loop-body
                    }
                    charge_op(Op::Add);
                }
                // After all that, charging must still be live.
                charge_op(Op::Mul);
            },
        );
        assert_eq!(ctx.counts.get(Op::Mul), 1);
        assert!(ctx.counts.get(Op::Add) >= 6);
    }

    #[test]
    fn named_sites_record_serializable_programs() {
        let mut ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::named("site.rs:test:1");
                static ANON: SegmentSite = SegmentSite::new();
                for _ in 0..3 {
                    let _g = site_enter(&SITE, 7);
                    body();
                }
                for _ in 0..3 {
                    let _g = site_enter(&ANON, 0);
                    body();
                }
            },
        );
        let fresh = ctx.progs.take_fresh();
        assert_eq!(fresh.len(), 1, "only the named site's program exports");
        let (stable, key, _) = &fresh[0];
        assert_eq!(*stable, stable_site_hash("site.rs:test:1"));
        assert_eq!(*key, 7);
        assert_eq!(ctx.progs.len(), 2, "both sites replay locally");
    }

    #[test]
    fn loop_sites_collapse_uniform_bodies() {
        let mut ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::named("site.rs:loop:1");
                let mut g = site_enter_loop(&SITE, 0, 5);
                for _ in 0..5 {
                    g.loop_iter();
                    body();
                }
                drop(g);
            },
        );
        let fresh = ctx.progs.take_fresh();
        assert_eq!(fresh.len(), 1);
        let prog = &fresh[0].2;
        assert!(
            matches!(prog.instrs()[0], Instr::Loop { n: 5, .. }),
            "uniform loop must collapse: {:?}",
            prog.instrs()
        );
    }

    #[test]
    fn loop_trip_counts_key_separately() {
        let run_trips = |trips: &[u64]| {
            let counts: Vec<u64> = trips.to_vec();
            with_test_ctx_full(
                ResourceKind::Sequential,
                int_table(),
                false,
                false,
                MemoMode::Replay,
                move || {
                    static SITE: SegmentSite = SegmentSite::new();
                    for &n in &counts {
                        let mut g = site_enter_loop(&SITE, 0, n);
                        for _ in 0..n {
                            g.loop_iter();
                            charge_op(Op::Add);
                        }
                        drop(g);
                    }
                },
            )
        };
        let ctx = run_trips(&[3, 5, 3, 5]);
        assert_eq!(ctx.counts.get(Op::Add), 16, "3+5+3+5 adds exactly");
        assert_eq!(ctx.acc, 32.0);
        assert_eq!(ctx.progs.len(), 2, "one program per trip count");
    }

    #[test]
    fn nested_named_sites_record_call_structure() {
        let mut ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static OUTER: SegmentSite = SegmentSite::named("site.rs:outer:1");
                static INNER: SegmentSite = SegmentSite::named("site.rs:inner:1");
                // Prime the inner program so the outer recording sees a
                // replayed (event-logged) nested region.
                {
                    let _i = site_enter(&INNER, 0);
                    charge_op(Op::Add);
                }
                let _o = site_enter(&OUTER, 0);
                charge_op(Op::Mul);
                {
                    let _i = site_enter(&INNER, 0);
                    charge_op(Op::Add);
                }
                charge_branch();
            },
        );
        let fresh = ctx.progs.take_fresh();
        let outer_stable = stable_site_hash("site.rs:outer:1");
        let inner_stable = stable_site_hash("site.rs:inner:1");
        let outer = fresh
            .iter()
            .find(|(s, _, _)| *s == outer_stable)
            .expect("outer recorded");
        assert!(
            outer
                .2
                .instrs()
                .iter()
                .any(|i| matches!(i, Instr::Call { site, key: 0 } if *site == inner_stable)),
            "outer program must reference inner as a Call: {:?}",
            outer.2.instrs()
        );
    }
}
