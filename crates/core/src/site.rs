//! Segment-site memoization: one-shot replay of straight-line regions.
//!
//! The single-source methodology (§2) makes a straight-line region's
//! charge stream a pure function of (code, cost table): executing the
//! same loop body again charges exactly the same operations in the same
//! order. This module exploits that — the first execution of a marked
//! region records the *delta* it added to the running segment (`Δacc`
//! and per-op `Δcounts`); every repeat applies that delta with one
//! addition per field instead of charging each operation live.
//!
//! A region is marked with [`g_loop!`](crate::g_loop) /
//! [`g_site!`](crate::g_site), which expand to a `static`
//! [`SegmentSite`] (the site id — one per *lexical* region) plus a
//! caller-supplied `u64` key for data-dependent trip counts. Regions
//! whose charge stream depends on the *values* being processed (e.g. a
//! branch on input data inside the body) must either stay unmarked or
//! fold the discriminating value into the key — a changed key is a
//! cache miss and the region records afresh.
//!
//! # When replay is bit-exact
//!
//! The recorded delta is replayed as `acc += Δacc`. That is bit-identical
//! to re-charging per-op only when every partial sum is exactly
//! representable, which [`install`](crate::tls) guarantees by enabling
//! memoization solely for *integer-valued* cost tables
//! ([`CostTable::is_integral`](crate::CostTable::is_integral)) on
//! *sequential* resources. Fractional tables, parallel resources
//! (whose DFG node lineage spans iterations), replaying processes and
//! the legacy charging path all leave the region charging live — marking
//! a region is always sound, never mandatory.
//!
//! [`MemoMode::Verify`] re-charges every "hit" live anyway and asserts
//! the recorded delta bit-equal — the debugging mode for validating new
//! region annotations.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::cost::OP_COUNT;
use crate::tls::{self, FAST, MEMO_OFF, MEMO_REPLAY, MEMO_VERIFY, S_PASSIVE, S_SEQ};

/// Site-memoization policy for a session (see the module docs for when
/// replay actually engages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum MemoMode {
    /// Never memoize; every marked region charges live.
    Off = 0,
    /// Replay recorded deltas on repeat executions (the default).
    #[default]
    Replay = 1,
    /// Replay *and* re-charge live, asserting the delta bit-equal —
    /// slow, for validating region annotations.
    Verify = 2,
}

/// The recorded first-execution delta of one `(site, key)` region.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SiteRecord {
    /// Cycles the region added to the segment accumulator.
    pub(crate) d_acc: f64,
    /// Operations the region charged, by dense op index.
    pub(crate) d_counts: [u64; OP_COUNT],
}

/// A lexical segment-site identity, declared `static` by the
/// [`g_loop!`](crate::g_loop) / [`g_site!`](crate::g_site) macros.
///
/// The id is assigned lazily on first use from a global counter, so
/// declaring sites is free and ids are dense.
pub struct SegmentSite {
    id: AtomicU32,
}

/// Global site-id allocator; 0 means "not yet assigned".
static NEXT_SITE: AtomicU32 = AtomicU32::new(1);

impl SegmentSite {
    /// Creates an unassigned site (use in a `static`).
    #[must_use]
    pub const fn new() -> SegmentSite {
        SegmentSite {
            id: AtomicU32::new(0),
        }
    }

    /// This site's process-global id, assigning it on first call.
    fn id(&self) -> u32 {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = NEXT_SITE.fetch_add(1, Ordering::Relaxed);
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(won) => won,
        }
    }
}

impl Default for SegmentSite {
    fn default() -> SegmentSite {
        SegmentSite::new()
    }
}

/// What the guard must do when the region ends.
enum Action {
    /// Memoization not engaged — nothing to do at exit.
    Inactive,
    /// First execution: record the delta between exit and the snapshot.
    Record {
        acc0: f64,
        counts0: [u64; OP_COUNT],
        gen0: u32,
        site: u32,
        key: u64,
    },
    /// Repeat execution: charging is parked at `S_PASSIVE`; apply the
    /// recorded delta at exit.
    Replay {
        d_acc: f64,
        d_counts: [u64; OP_COUNT],
        gen0: u32,
    },
    /// Repeat execution in verify mode: charge live, then assert the
    /// fresh delta bit-equal to the record.
    Verify {
        acc0: f64,
        counts0: [u64; OP_COUNT],
        gen0: u32,
        site: u32,
        key: u64,
    },
}

/// RAII guard for one execution of a memoized region; the exit logic
/// runs on drop, so `break` / `continue` / `?` / early `return` inside
/// the region stay safe.
pub struct SiteGuard {
    action: Action,
}

/// Enters a memoized region at `site` with the caller's `key` (fold any
/// value that changes the region's charge stream — trip counts,
/// data-dependent branch selectors — into the key).
///
/// Returns a guard whose drop ends the region. Usually called via
/// [`g_loop!`](crate::g_loop) / [`g_site!`](crate::g_site) rather than
/// directly.
#[must_use]
pub fn site_enter(site: &SegmentSite, key: u64) -> SiteGuard {
    let (memo, state, gen0, acc0) =
        FAST.with(|f| (f.memo.get(), f.state.get(), f.seg_gen.get(), f.acc.get()));
    // Engaged only for live sequential charging with memoization on:
    // inside an outer replayed region `state` is `S_PASSIVE`, so nested
    // regions are inert (the outer record already covers them).
    if memo == MEMO_OFF || state != S_SEQ {
        return SiteGuard {
            action: Action::Inactive,
        };
    }
    let site_id = site.id();
    let hit = tls::with(|c| c.sites.get(&(site_id, key)).cloned()).flatten();
    let action = match hit {
        Some(rec) if memo == MEMO_REPLAY => {
            // Park charging: every op in the region becomes a flag test.
            FAST.with(|f| f.state.set(S_PASSIVE));
            Action::Replay {
                d_acc: rec.d_acc,
                d_counts: rec.d_counts,
                gen0,
            }
        }
        Some(_) => {
            debug_assert_eq!(memo, MEMO_VERIFY);
            Action::Verify {
                acc0,
                counts0: snapshot_counts(),
                gen0,
                site: site_id,
                key,
            }
        }
        None => Action::Record {
            acc0,
            counts0: snapshot_counts(),
            gen0,
            site: site_id,
            key,
        },
    };
    SiteGuard { action }
}

fn snapshot_counts() -> [u64; OP_COUNT] {
    FAST.with(|f| {
        let mut out = [0u64; OP_COUNT];
        for (o, c) in out.iter_mut().zip(f.counts.iter()) {
            *o = c.get();
        }
        out
    })
}

/// Computes the (Δacc, Δcounts) between the current fast slots and the
/// entry snapshot. Returns `None` on counter underflow, which means a
/// segment boundary drained the slots inside the region.
fn delta_since(acc0: f64, counts0: &[u64; OP_COUNT]) -> Option<SiteRecord> {
    FAST.with(|f| {
        let d_acc = f.acc.get() - acc0;
        let mut d_counts = [0u64; OP_COUNT];
        for i in 0..OP_COUNT {
            d_counts[i] = f.counts[i].get().checked_sub(counts0[i])?;
        }
        Some(SiteRecord { d_acc, d_counts })
    })
}

impl Drop for SiteGuard {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.action, Action::Inactive) {
            Action::Inactive => {}
            Action::Replay {
                d_acc,
                d_counts,
                gen0,
            } => FAST.with(|f| {
                debug_assert_eq!(
                    f.seg_gen.get(),
                    gen0,
                    "segment boundary inside a replayed site region: the \
                     recorded delta was taken from a boundary-free execution"
                );
                f.state.set(S_SEQ);
                f.acc.set(f.acc.get() + d_acc);
                for (c, d) in f.counts.iter().zip(d_counts.iter()) {
                    c.set(c.get() + d);
                }
                f.site_hits.set(f.site_hits.get() + 1);
            }),
            Action::Record {
                acc0,
                counts0,
                gen0,
                site,
                key,
            } => {
                let boundary_free =
                    FAST.with(|f| f.seg_gen.get() == gen0 && f.state.get() == S_SEQ);
                if !boundary_free {
                    // A wait/channel op fired inside the region (or the
                    // context changed): the delta spans segments and must
                    // not be cached. The region simply stays live.
                    return;
                }
                if let Some(rec) = delta_since(acc0, &counts0) {
                    let _ = tls::with(|c| c.sites.insert((site, key), rec));
                    FAST.with(|f| f.site_misses.set(f.site_misses.get() + 1));
                }
            }
            Action::Verify {
                acc0,
                counts0,
                gen0,
                site,
                key,
            } => {
                let boundary_free =
                    FAST.with(|f| f.seg_gen.get() == gen0 && f.state.get() == S_SEQ);
                if !boundary_free {
                    return;
                }
                let fresh = delta_since(acc0, &counts0);
                let stored = tls::with(|c| c.sites.get(&(site, key)).cloned()).flatten();
                if let (Some(fresh), Some(stored)) = (fresh, stored) {
                    assert_eq!(
                        fresh.d_acc.to_bits(),
                        stored.d_acc.to_bits(),
                        "site {site} key {key}: live re-charge disagrees with \
                         the recorded Δacc — the region's charge stream is \
                         data-dependent; fold the discriminating value into \
                         the site key or leave the region unmarked"
                    );
                    assert_eq!(
                        fresh.d_counts, stored.d_counts,
                        "site {site} key {key}: live re-charge disagrees with \
                         the recorded op counts — the region's charge stream \
                         is data-dependent"
                    );
                    FAST.with(|f| f.site_hits.set(f.site_hits.get() + 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostTable, Op};
    use crate::resource::ResourceKind;
    use crate::tls::testutil::with_test_ctx_full;
    use crate::tls::{charge_branch, charge_op};

    fn int_table() -> CostTable {
        CostTable::from_pairs([(Op::Add, 2.0), (Op::Mul, 5.0), (Op::Branch, 1.0)])
    }

    fn body() {
        charge_op(Op::Add);
        charge_op(Op::Mul);
        charge_branch();
    }

    #[test]
    fn replay_matches_live_bit_for_bit() {
        let run = |memo| {
            with_test_ctx_full(
                ResourceKind::Sequential,
                int_table(),
                false,
                false,
                memo,
                || {
                    static SITE: SegmentSite = SegmentSite::new();
                    for _ in 0..10 {
                        let _g = site_enter(&SITE, 0);
                        body();
                    }
                },
            )
        };
        let live = run(MemoMode::Off);
        let memo = run(MemoMode::Replay);
        assert_eq!(live.acc.to_bits(), memo.acc.to_bits());
        assert_eq!(live.counts, memo.counts);
        assert_eq!(live.counts.get(Op::Add), 10);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                let mut hits = 0;
                let mut misses = 0;
                for _ in 0..7 {
                    let _g = site_enter(&SITE, 0);
                    body();
                }
                crate::tls::FAST.with(|f| {
                    hits = f.site_hits.get();
                    misses = f.site_misses.get();
                });
                assert_eq!(misses, 1, "first execution records");
                assert_eq!(hits, 6, "repeats replay");
            },
        );
        assert_eq!(ctx.sites.len(), 1);
    }

    #[test]
    fn distinct_keys_miss_separately() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for trip in [3u64, 5, 3, 5, 3] {
                    let _g = site_enter(&SITE, trip);
                    for _ in 0..trip {
                        charge_op(Op::Add);
                    }
                }
            },
        );
        // 3+5+3+5+3 Adds regardless of which executions replayed.
        assert_eq!(ctx.counts.get(Op::Add), 19);
        assert_eq!(ctx.acc, 38.0);
        assert_eq!(ctx.sites.len(), 2, "one record per key");
    }

    #[test]
    fn fractional_tables_never_replay() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            CostTable::figure3(), // Branch = 2.4
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for _ in 0..4 {
                    let _g = site_enter(&SITE, 0);
                    charge_branch();
                }
            },
        );
        assert!(ctx.sites.is_empty(), "fractional table must stay live");
        assert_eq!(ctx.counts.get(Op::Branch), 4);
    }

    #[test]
    fn verify_mode_accepts_deterministic_regions() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Verify,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for _ in 0..5 {
                    let _g = site_enter(&SITE, 0);
                    body();
                }
            },
        );
        assert_eq!(ctx.counts.get(Op::Add), 5);
        assert_eq!(ctx.acc, 5.0 * 8.0);
    }

    #[test]
    #[should_panic(expected = "data-dependent")]
    fn verify_mode_catches_data_dependent_regions() {
        let _ = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Verify,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for trip in [1u64, 2] {
                    // Same key, different charge stream: verify must trip.
                    let _g = site_enter(&SITE, 0);
                    for _ in 0..trip {
                        charge_op(Op::Add);
                    }
                }
            },
        );
    }

    #[test]
    fn nested_regions_stay_consistent() {
        let run = |memo| {
            with_test_ctx_full(
                ResourceKind::Sequential,
                int_table(),
                false,
                false,
                memo,
                || {
                    static OUTER: SegmentSite = SegmentSite::new();
                    static INNER: SegmentSite = SegmentSite::new();
                    for _ in 0..3 {
                        let _o = site_enter(&OUTER, 0);
                        charge_op(Op::Mul);
                        for _ in 0..4 {
                            let _i = site_enter(&INNER, 0);
                            charge_op(Op::Add);
                        }
                    }
                },
            )
        };
        let live = run(MemoMode::Off);
        let memo = run(MemoMode::Replay);
        assert_eq!(live.acc.to_bits(), memo.acc.to_bits());
        assert_eq!(live.counts, memo.counts);
        assert_eq!(live.counts.get(Op::Add), 12);
    }

    #[test]
    fn early_exit_from_region_is_safe() {
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            int_table(),
            false,
            false,
            MemoMode::Replay,
            || {
                static SITE: SegmentSite = SegmentSite::new();
                for i in 0..6 {
                    let _g = site_enter(&SITE, 0);
                    charge_op(Op::Add);
                    if i % 2 == 0 {
                        continue; // drops the guard mid-loop-body
                    }
                    charge_op(Op::Add);
                }
                // After all that, charging must still be live.
                charge_op(Op::Mul);
            },
        );
        assert_eq!(ctx.counts.get(Op::Mul), 1);
        assert!(ctx.counts.get(Op::Add) >= 6);
    }
}
