//! Per-process estimation context.
//!
//! The paper's library works by *implicitly* intercepting every overloaded
//! operator executed by the running process. Because this kernel runs each
//! simulated process on its own OS thread, a `thread_local!` slot is the
//! exact analogue: [`crate::PerfModel::spawn`] installs the context before
//! the process body runs, the annotated [`crate::G`] types charge into it,
//! and the channel wrappers drain it at every segment boundary.

use std::cell::RefCell;
use std::sync::Arc;

use crate::cost::{CostTable, Op, OpCounts, OP_COUNT};
use crate::estimator::EstimatorShared;
use crate::hw::{Dfg, NO_NODE};
use crate::resource::{ResourceId, ResourceKind};

/// Cursor over a previously recorded per-segment cycle trace.
///
/// When installed, the process is in *replay* mode: operator charging is
/// a no-op and every segment boundary pops the next recorded cycle count
/// instead of recomputing it. Sound whenever the process's charging is
/// deterministic in (code, input data, cost table) — which the
/// single-source methodology guarantees for data-independent workloads —
/// because the popped value is bit-identical to what live estimation
/// would produce.
pub(crate) struct ReplayCursor {
    /// Recorded cycle counts, one per `end_segment` in execution order.
    pub(crate) trace: Arc<Vec<f64>>,
    /// Index of the next segment to replay.
    pub(crate) next: usize,
}

/// The running segment's accumulated state for one process thread.
pub(crate) struct ThreadCtx {
    pub(crate) est: Arc<EstimatorShared>,
    pub(crate) pid: usize,
    pub(crate) resource: ResourceId,
    pub(crate) kind: ResourceKind,
    /// Snapshot of the resource's cost table (dense, for fast access).
    pub(crate) costs: [f64; OP_COUNT],
    pub(crate) k: f64,
    pub(crate) rtos_cycles: f64,
    /// Sequential resources: accumulated fractional cycles.
    /// Parallel resources: accumulated single-ALU cycles (T_max).
    pub(crate) acc: f64,
    pub(crate) counts: OpCounts,
    /// Critical-path tracking for parallel resources.
    pub(crate) max_ready: f64,
    /// Optional full dataflow-graph recording (for HLS export).
    pub(crate) dfg: Option<Dfg>,
    /// Node at which the current segment started.
    pub(crate) current_node: u32,
    /// Replay mode: pop recorded segment costs instead of charging.
    pub(crate) replay: Option<ReplayCursor>,
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Installs the context for this process thread.
pub(crate) fn install(ctx: ThreadCtx) {
    CTX.with(|slot| {
        let mut slot = slot.borrow_mut();
        debug_assert!(slot.is_none(), "estimation context installed twice");
        *slot = Some(ctx);
    });
}

/// Removes the context (at process-body exit).
pub(crate) fn uninstall() -> Option<ThreadCtx> {
    CTX.with(|slot| slot.borrow_mut().take())
}

/// Runs `f` with the installed context, if any. Returns `None` when the
/// calling thread is not an analyzed process (plain kernel processes,
/// unit tests, environment code outside `PerfModel::spawn`).
#[inline]
pub(crate) fn with<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
    CTX.with(|slot| slot.borrow_mut().as_mut().map(f))
}

impl ThreadCtx {
    /// Charges one operation with up to two data dependences and returns
    /// the `(ready_time, dfg_node)` of the produced value.
    ///
    /// * Sequential resources accumulate the raw fractional cost (§3:
    ///   "total time is obtained by adding the partial times").
    /// * Parallel resources round each operation up to a whole number of
    ///   clock cycles (§3: "a multiple of the clock period") and track both
    ///   the dataflow critical path (`T_min`) and the single-ALU sum
    ///   (`T_max`).
    /// * Environment resources charge nothing.
    #[inline]
    pub(crate) fn charge(
        &mut self,
        op: Op,
        a_ready: f64,
        a_node: u32,
        b_ready: f64,
        b_node: u32,
    ) -> (f64, u32) {
        if self.replay.is_some() {
            // Replay mode: the segment's cycles come from the recorded
            // trace at the next boundary; individual operations charge
            // nothing (the workload runs its plain form).
            return (0.0, NO_NODE);
        }
        match self.kind {
            ResourceKind::Environment => (0.0, NO_NODE),
            ResourceKind::Sequential => {
                self.acc += self.costs[op.index()];
                self.counts.bump(op);
                (0.0, NO_NODE)
            }
            ResourceKind::Parallel => {
                let lat = self.costs[op.index()].ceil().max(0.0);
                let start = a_ready.max(b_ready);
                let ready = start + lat;
                self.acc += lat;
                if ready > self.max_ready {
                    self.max_ready = ready;
                }
                self.counts.bump(op);
                let node = match self.dfg.as_mut() {
                    Some(dfg) => dfg.push(op, lat as u64, a_node, b_node),
                    None => NO_NODE,
                };
                (ready, node)
            }
        }
    }

    /// Replay mode: pops the next recorded segment cost, or `None` when
    /// the context estimates live.
    ///
    /// # Panics
    ///
    /// Panics when the recorded trace is exhausted — the replayed process
    /// executed more segments than the recording, i.e. the cached trace
    /// belongs to a different workload configuration (stale cache key).
    pub(crate) fn pop_replay(&mut self) -> Option<f64> {
        let cursor = self.replay.as_mut()?;
        let v = cursor.trace.get(cursor.next).copied().unwrap_or_else(|| {
            panic!(
                "segment replay trace exhausted after {} segments: \
                 the recorded trace does not match this process \
                 (stale or mismatched segment-cost cache entry)",
                cursor.next
            )
        });
        cursor.next += 1;
        Some(v)
    }

    /// Resets the per-segment accumulators, returning the finished
    /// segment's `(acc, max_ready, counts, dfg)`.
    pub(crate) fn take_segment(&mut self) -> (f64, f64, OpCounts, Option<Dfg>) {
        let acc = std::mem::take(&mut self.acc);
        let max_ready = std::mem::take(&mut self.max_ready);
        let counts = std::mem::replace(&mut self.counts, OpCounts::new());
        let dfg = match self.dfg.as_mut() {
            Some(d) => {
                let taken = std::mem::take(d);
                Some(taken)
            }
            None => None,
        };
        (acc, max_ready, counts, dfg)
    }
}

/// Charges a standalone operation with no tracked operands (used by the
/// control-flow macros). Public because the `g_if!`/`g_while!`/`g_call!`
/// macros expand to calls to it; not intended for direct use.
#[doc(hidden)]
#[inline]
pub fn charge_op(op: Op) {
    let _ = with(|c| c.charge(op, 0.0, NO_NODE, 0.0, NO_NODE));
}

/// Charges a conditional-branch evaluation (`if` / loop condition).
#[inline]
pub fn charge_branch() {
    charge_op(Op::Branch);
}

/// Charges a function-call overhead.
#[inline]
pub fn charge_call() {
    charge_op(Op::Call);
}

/// Builds a snapshot of the table as a dense array.
pub(crate) fn dense_costs(table: &CostTable) -> [f64; OP_COUNT] {
    *table.as_dense()
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers letting unit tests exercise charging without a simulator.
    use super::*;
    use crate::resource::Platform;
    use scperf_kernel::Time;

    /// Installs a context bound to a throwaway estimator and runs `f`,
    /// returning the context state afterwards.
    pub(crate) fn with_test_ctx(
        kind: ResourceKind,
        table: CostTable,
        record_dfg: bool,
        f: impl FnOnce(),
    ) -> ThreadCtx {
        let mut platform = Platform::new();
        let resource = match kind {
            ResourceKind::Sequential => {
                platform.sequential("cpu", Time::ns(10), table.clone(), 0.0)
            }
            ResourceKind::Parallel => platform.parallel("hw", Time::ns(10), table.clone(), 0.0),
            ResourceKind::Environment => platform.environment("env"),
        };
        let est = EstimatorShared::new(platform, crate::Mode::EstimateOnly);
        install(ThreadCtx {
            est,
            pid: 0,
            resource,
            kind,
            costs: dense_costs(&table),
            k: 0.0,
            rtos_cycles: 0.0,
            acc: 0.0,
            counts: OpCounts::new(),
            max_ready: 0.0,
            dfg: record_dfg.then(Dfg::default),
            current_node: 0,
            replay: None,
        });
        f();
        uninstall().expect("context present")
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::with_test_ctx;
    use super::*;

    #[test]
    fn sequential_charging_accumulates_raw_costs() {
        let table = CostTable::from_pairs([(Op::Add, 1.5), (Op::Mul, 3.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            charge_op(Op::Add);
            charge_op(Op::Add);
            charge_op(Op::Mul);
        });
        assert_eq!(ctx.acc, 6.0);
        assert_eq!(ctx.counts.get(Op::Add), 2);
        assert_eq!(ctx.max_ready, 0.0);
    }

    #[test]
    fn parallel_charging_rounds_to_cycles() {
        let table = CostTable::from_pairs([(Op::Branch, 2.4)]);
        let ctx = with_test_ctx(ResourceKind::Parallel, table, false, || {
            charge_branch();
        });
        assert_eq!(ctx.acc, 3.0); // ceil(2.4)
        assert_eq!(ctx.max_ready, 3.0);
    }

    #[test]
    fn environment_charges_nothing() {
        let table = CostTable::risc_sw();
        let ctx = with_test_ctx(ResourceKind::Environment, table, false, || {
            charge_op(Op::Div);
        });
        assert_eq!(ctx.acc, 0.0);
        assert_eq!(ctx.counts.total(), 0);
    }

    #[test]
    fn charging_without_context_is_a_noop() {
        // Must not panic on an un-instrumented thread.
        charge_op(Op::Add);
        charge_branch();
        charge_call();
    }

    #[test]
    fn replaying_context_ignores_charges_and_pops_trace() {
        let table = CostTable::from_pairs([(Op::Add, 2.0)]);
        let mut ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {});
        ctx.replay = Some(ReplayCursor {
            trace: Arc::new(vec![7.5, 3.25]),
            next: 0,
        });
        let (ready, node) = ctx.charge(Op::Add, 0.0, NO_NODE, 0.0, NO_NODE);
        assert_eq!((ready, node), (0.0, NO_NODE));
        assert_eq!(ctx.acc, 0.0, "replay must not accumulate");
        assert_eq!(ctx.counts.total(), 0);
        assert_eq!(ctx.pop_replay(), Some(7.5));
        assert_eq!(ctx.pop_replay(), Some(3.25));
    }

    #[test]
    fn live_context_does_not_pop() {
        let table = CostTable::from_pairs([(Op::Add, 2.0)]);
        let mut ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {});
        assert_eq!(ctx.pop_replay(), None);
    }

    #[test]
    fn take_segment_resets_state() {
        let table = CostTable::from_pairs([(Op::Add, 2.0)]);
        let mut ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            charge_op(Op::Add);
        });
        let (acc, _, counts, _) = ctx.take_segment();
        assert_eq!(acc, 2.0);
        assert_eq!(counts.get(Op::Add), 1);
        assert_eq!(ctx.acc, 0.0);
        assert_eq!(ctx.counts.total(), 0);
    }
}
