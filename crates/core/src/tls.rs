//! Per-process estimation context.
//!
//! The paper's library works by *implicitly* intercepting every overloaded
//! operator executed by the running process. Because this kernel runs each
//! simulated process on its own OS thread, a `thread_local!` slot is the
//! exact analogue: [`crate::PerfModel::spawn`] installs the context before
//! the process body runs, the annotated [`crate::G`] types charge into it,
//! and the channel wrappers drain it at every segment boundary.
//!
//! # The two-tier layout
//!
//! Charging is the most-executed code in the whole system (§3: *every*
//! elementary operation charges), so the context is split in two:
//!
//! * [`FastSlots`] — a flat thread-local of [`Cell`]s holding exactly the
//!   state mutated per operation: a one-byte state discriminant, the
//!   running accumulators (`acc`, `max_ready`), the dense cost table
//!   (pre-ceiled for parallel resources) and the per-op counters.
//!   [`charge`] reads the discriminant once and performs branch-predictable
//!   arithmetic on the cells — no `RefCell` borrow, no `Option` unwrap.
//!   On an un-instrumented thread the discriminant is [`S_ABSENT`] and the
//!   whole call is a single flag test.
//! * [`ThreadCtx`] — the full context behind the original
//!   `RefCell<Option<…>>`, touched only at segment boundaries
//!   (`take_segment`), at site-memo region edges, and by the preserved
//!   legacy charging path used as the benchmark baseline.
//!
//! `install` seeds the fast slots from the `ThreadCtx`; `take_segment`
//! drains both tiers (exactly one of them holds non-zero accumulators);
//! `uninstall` folds any residual fast-slot state back into the returned
//! `ThreadCtx` so tests and callers observe the same totals as before the
//! split.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use crate::cost::{CostTable, Op, OpCounts, OP_COUNT};
use crate::estimator::EstimatorShared;
use crate::hw::{Dfg, DfgNode, NO_NODE};
use crate::prog::{fingerprint_costs, ProgStore, RecEvent};
use crate::resource::{ResourceId, ResourceKind};
use crate::site::MemoMode;

/// Fast-slot state: no context installed — charging is a no-op.
pub(crate) const S_ABSENT: u8 = 0;
/// Fast-slot state: context installed but charging is disabled
/// (environment resource, trace replay, or inside a replayed site region).
pub(crate) const S_PASSIVE: u8 = 1;
/// Fast-slot state: live sequential charging (`acc += cost`).
pub(crate) const S_SEQ: u8 = 2;
/// Fast-slot state: live parallel charging (ceiled latency, ready times).
pub(crate) const S_PAR: u8 = 3;
/// Fast-slot state: parallel charging with DFG recording (outlined path —
/// the node push needs the `RefCell` context).
pub(crate) const S_PAR_DFG: u8 = 4;
/// Fast-slot state: route every charge through the legacy
/// [`ThreadCtx::charge`] `RefCell` path (benchmark baseline).
pub(crate) const S_LEGACY: u8 = 5;

/// Effective memo mode: off (mirrors `MemoMode::Off as u8`).
pub(crate) const MEMO_OFF: u8 = MemoMode::Off as u8;
/// Effective memo mode: replay recorded deltas.
pub(crate) const MEMO_REPLAY: u8 = MemoMode::Replay as u8;
/// Effective memo mode: replay + live re-charge with bit-equality asserts.
pub(crate) const MEMO_VERIFY: u8 = MemoMode::Verify as u8;

/// The flat per-op fast path: every field a [`Cell`], mutated without any
/// `RefCell` borrow. One instance per thread; meaningful only while a
/// [`ThreadCtx`] is installed.
pub(crate) struct FastSlots {
    /// One of the `S_*` discriminants.
    pub(crate) state: Cell<u8>,
    /// Effective site-memoization mode (a `MemoMode` as `u8`); `0` = off.
    pub(crate) memo: Cell<u8>,
    /// Bumped at every segment boundary; site regions use it to detect a
    /// boundary firing inside the region.
    pub(crate) seg_gen: Cell<u32>,
    /// Sequential: accumulated fractional cycles. Parallel: accumulated
    /// single-ALU cycles (`T_max`).
    pub(crate) acc: Cell<f64>,
    /// Parallel: critical-path frontier (`T_min`).
    pub(crate) max_ready: Cell<f64>,
    /// Dense cost snapshot; pre-ceiled (`ceil().max(0.0)`) for parallel
    /// states so the hot path does no rounding.
    pub(crate) costs: [Cell<f64>; OP_COUNT],
    /// Per-op execution counters for the running segment.
    pub(crate) counts: [Cell<u64>; OP_COUNT],
    /// Site-memo regions satisfied from the cache this segment.
    pub(crate) site_hits: Cell<u64>,
    /// Site-memo regions recorded (first execution) this segment.
    pub(crate) site_misses: Cell<u64>,
}

impl FastSlots {
    const fn new() -> FastSlots {
        FastSlots {
            state: Cell::new(S_ABSENT),
            memo: Cell::new(0),
            seg_gen: Cell::new(0),
            acc: Cell::new(0.0),
            max_ready: Cell::new(0.0),
            costs: [const { Cell::new(0.0) }; OP_COUNT],
            counts: [const { Cell::new(0) }; OP_COUNT],
            site_hits: Cell::new(0),
            site_misses: Cell::new(0),
        }
    }
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
    pub(crate) static FAST: FastSlots = const { FastSlots::new() };
}

/// Cursor over a previously recorded per-segment cycle trace.
///
/// When installed, the process is in *replay* mode: operator charging is
/// a no-op and every segment boundary pops the next recorded cycle count
/// instead of recomputing it. Sound whenever the process's charging is
/// deterministic in (code, input data, cost table) — which the
/// single-source methodology guarantees for data-independent workloads —
/// because the popped value is bit-identical to what live estimation
/// would produce.
pub(crate) struct ReplayCursor {
    /// Recorded cycle counts, one per `end_segment` in execution order.
    pub(crate) trace: Arc<Vec<f64>>,
    /// Per-segment op counts and HW extremes, parallel to `trace`;
    /// `None` for bare cycle vectors (timing-only replay).
    pub(crate) detail: Option<Arc<Vec<crate::recorder::SegDetail>>>,
    /// Index of the next segment to replay.
    pub(crate) next: usize,
}

/// The running segment's accumulated state for one process thread.
pub(crate) struct ThreadCtx {
    pub(crate) est: Arc<EstimatorShared>,
    pub(crate) pid: usize,
    pub(crate) resource: ResourceId,
    pub(crate) kind: ResourceKind,
    /// Snapshot of the resource's cost table (dense, for fast access).
    pub(crate) costs: [f64; OP_COUNT],
    pub(crate) k: f64,
    pub(crate) rtos_cycles: f64,
    /// Sequential resources: accumulated fractional cycles.
    /// Parallel resources: accumulated single-ALU cycles (T_max).
    /// Only the legacy charging path accumulates here; the fast path uses
    /// [`FastSlots::acc`]. `take_segment` and `uninstall` merge the two.
    pub(crate) acc: f64,
    pub(crate) counts: OpCounts,
    /// Critical-path tracking for parallel resources (legacy path).
    pub(crate) max_ready: f64,
    /// Optional full dataflow-graph recording (for HLS export).
    pub(crate) dfg: Option<Dfg>,
    /// Node at which the current segment started.
    pub(crate) current_node: u32,
    /// Replay mode: pop recorded segment costs instead of charging.
    pub(crate) replay: Option<ReplayCursor>,
    /// Route charging through the legacy `RefCell` path (baseline).
    pub(crate) legacy: bool,
    /// Requested site-memoization mode; the effective mode additionally
    /// requires a sequential resource, live estimation and an
    /// integer-valued cost table (see [`CostTable::is_integral`]).
    pub(crate) memo: MemoMode,
    /// Compiled cost programs for memoized regions, keyed by
    /// `(site id, caller key)`, plus the optional warm set shared across
    /// processes/sessions.
    pub(crate) progs: ProgStore,
    /// Nested-region events logged while an enclosing site records
    /// (drained by the recording guard's drop).
    pub(crate) rec_events: Vec<RecEvent>,
    /// Number of site regions currently recording on this thread.
    pub(crate) rec_depth: u32,
    /// Recycled DFG node buffer (arena reuse across segments).
    pub(crate) dfg_spare: Vec<DfgNode>,
    /// Scratch finish-time buffer for sealing DFG critical paths.
    pub(crate) cp_scratch: Vec<u64>,
}

/// Everything one finished segment drained out of both context tiers.
pub(crate) struct SegmentTake {
    /// Accumulated cycles (sequential) / single-ALU cycles (parallel).
    pub(crate) acc: f64,
    /// Critical-path frontier (parallel).
    pub(crate) max_ready: f64,
    /// Merged per-op counts (fast + legacy).
    pub(crate) counts: OpCounts,
    /// The sealed DFG, when recording was on.
    pub(crate) dfg: Option<Dfg>,
    /// Operations charged through the fast path this segment.
    pub(crate) fast_ops: u64,
    /// Site-memo cache hits this segment.
    pub(crate) site_hits: u64,
    /// Site-memo cache misses (recordings) this segment.
    pub(crate) site_misses: u64,
    /// 1 when this segment's DFG node buffer was recycled from the arena.
    pub(crate) arena_reuse: u64,
}

/// Installs the context for this process thread and arms the fast slots.
pub(crate) fn install(mut ctx: ThreadCtx) {
    let state = if ctx.replay.is_some() || ctx.kind == ResourceKind::Environment {
        S_PASSIVE
    } else if ctx.legacy {
        S_LEGACY
    } else {
        match ctx.kind {
            ResourceKind::Sequential => S_SEQ,
            ResourceKind::Parallel => {
                if ctx.dfg.is_some() {
                    S_PAR_DFG
                } else {
                    S_PAR
                }
            }
            ResourceKind::Environment => unreachable!(),
        }
    };
    // Memoized delta replay is bit-exact only when every cost is an
    // integer-valued f64 (all partial sums are then exact); otherwise the
    // site regions silently stay live.
    let memo = if state == S_SEQ && integral(&ctx.costs) {
        ctx.memo as u8
    } else {
        MemoMode::Off as u8
    };
    // A warm program set recorded under a different cost table must not
    // replay: drop it (counted in `est.prog.rejects`) so every region
    // records afresh against the installed table.
    if let Some(warm) = ctx.progs.warm.as_ref() {
        if memo == MEMO_OFF || warm.table_fp() != fingerprint_costs(&ctx.costs) {
            ctx.progs.warm = None;
            ctx.progs.rejects += 1;
        }
    }
    FAST.with(|f| {
        debug_assert_eq!(
            f.state.get(),
            S_ABSENT,
            "estimation context installed twice"
        );
        let par = matches!(state, S_PAR | S_PAR_DFG);
        for i in 0..OP_COUNT {
            let c = ctx.costs[i];
            f.costs[i].set(if par { c.ceil().max(0.0) } else { c });
            f.counts[i].set(0);
        }
        f.acc.set(0.0);
        f.max_ready.set(0.0);
        f.site_hits.set(0);
        f.site_misses.set(0);
        f.memo.set(memo);
        f.state.set(state);
    });
    CTX.with(|slot| {
        let mut slot = slot.borrow_mut();
        debug_assert!(slot.is_none(), "estimation context installed twice");
        *slot = Some(ctx);
    });
}

fn integral(costs: &[f64; OP_COUNT]) -> bool {
    costs.iter().all(|c| c.is_finite() && c.fract() == 0.0)
}

/// Removes the context (at process-body exit), folding any residual
/// fast-slot state back into the returned `ThreadCtx` so callers observe
/// the same accumulators as before the fast-path split.
pub(crate) fn uninstall() -> Option<ThreadCtx> {
    let mut ctx = CTX.with(|slot| slot.borrow_mut().take())?;
    FAST.with(|f| {
        ctx.acc += f.acc.replace(0.0);
        let mr = f.max_ready.replace(0.0);
        if mr > ctx.max_ready {
            ctx.max_ready = mr;
        }
        for (i, c) in f.counts.iter().enumerate() {
            ctx.counts.add_index(i, c.replace(0));
        }
        f.site_hits.set(0);
        f.site_misses.set(0);
        f.memo.set(MemoMode::Off as u8);
        f.state.set(S_ABSENT);
    });
    Some(ctx)
}

/// Runs `f` with the installed context, if any. Returns `None` when the
/// calling thread is not an analyzed process (plain kernel processes,
/// unit tests, environment code outside `PerfModel::spawn`).
#[inline]
pub(crate) fn with<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
    CTX.with(|slot| slot.borrow_mut().as_mut().map(f))
}

/// Charges one operation with up to two data dependences through the flat
/// fast path, returning the `(ready_time, dfg_node)` of the produced
/// value.
///
/// * Sequential resources accumulate the raw fractional cost (§3: "total
///   time is obtained by adding the partial times").
/// * Parallel resources add the pre-ceiled latency (§3: "a multiple of
///   the clock period") and track both the dataflow critical path
///   (`T_min`) and the single-ALU sum (`T_max`).
/// * Absent, environment and replaying contexts cost one flag test.
///
/// The arithmetic is bit-identical to the legacy [`ThreadCtx::charge`]
/// path: same accumulation order, same rounding (done once at install).
#[inline]
pub(crate) fn charge(op: Op, a_ready: f64, a_node: u32, b_ready: f64, b_node: u32) -> (f64, u32) {
    FAST.with(|f| {
        let state = f.state.get();
        if state <= S_PASSIVE {
            return (0.0, NO_NODE);
        }
        if state == S_SEQ {
            let i = op.index();
            f.acc.set(f.acc.get() + f.costs[i].get());
            f.counts[i].set(f.counts[i].get() + 1);
            return (0.0, NO_NODE);
        }
        if state == S_PAR {
            return (charge_par(f, op, a_ready, b_ready), NO_NODE);
        }
        charge_slow(f, state, op, a_ready, a_node, b_ready, b_node)
    })
}

/// Parallel-resource arithmetic shared by the [`S_PAR`] and [`S_PAR_DFG`]
/// states. `costs` holds pre-ceiled latencies.
#[inline]
fn charge_par(f: &FastSlots, op: Op, a_ready: f64, b_ready: f64) -> f64 {
    let i = op.index();
    let lat = f.costs[i].get();
    let start = a_ready.max(b_ready);
    let ready = start + lat;
    f.acc.set(f.acc.get() + lat);
    if ready > f.max_ready.get() {
        f.max_ready.set(ready);
    }
    f.counts[i].set(f.counts[i].get() + 1);
    ready
}

/// Outlined uncommon states: DFG recording (needs the `RefCell` context
/// for the node push) and the legacy baseline path.
#[cold]
#[inline(never)]
fn charge_slow(
    f: &FastSlots,
    state: u8,
    op: Op,
    a_ready: f64,
    a_node: u32,
    b_ready: f64,
    b_node: u32,
) -> (f64, u32) {
    if state == S_PAR_DFG {
        let ready = charge_par(f, op, a_ready, b_ready);
        let lat = f.costs[op.index()].get() as u64;
        let node = with(|c| match c.dfg.as_mut() {
            Some(dfg) => dfg.push(op, lat, a_node, b_node),
            None => NO_NODE,
        })
        .unwrap_or(NO_NODE);
        (ready, node)
    } else {
        debug_assert_eq!(state, S_LEGACY);
        with(|c| c.charge(op, a_ready, a_node, b_ready, b_node)).unwrap_or((0.0, NO_NODE))
    }
}

impl ThreadCtx {
    /// The original per-op charging path, preserved verbatim behind the
    /// [`S_LEGACY`] state as the measurable pre-fast-path baseline (see
    /// `estimator_bench`): a full thread-local + `RefCell` access per
    /// operation.
    ///
    /// * Sequential resources accumulate the raw fractional cost (§3:
    ///   "total time is obtained by adding the partial times").
    /// * Parallel resources round each operation up to a whole number of
    ///   clock cycles (§3: "a multiple of the clock period") and track both
    ///   the dataflow critical path (`T_min`) and the single-ALU sum
    ///   (`T_max`).
    /// * Environment resources charge nothing.
    #[inline]
    pub(crate) fn charge(
        &mut self,
        op: Op,
        a_ready: f64,
        a_node: u32,
        b_ready: f64,
        b_node: u32,
    ) -> (f64, u32) {
        if self.replay.is_some() {
            // Replay mode: the segment's cycles come from the recorded
            // trace at the next boundary; individual operations charge
            // nothing (the workload runs its plain form).
            return (0.0, NO_NODE);
        }
        match self.kind {
            ResourceKind::Environment => (0.0, NO_NODE),
            ResourceKind::Sequential => {
                self.acc += self.costs[op.index()];
                self.counts.bump(op);
                (0.0, NO_NODE)
            }
            ResourceKind::Parallel => {
                let lat = self.costs[op.index()].ceil().max(0.0);
                let start = a_ready.max(b_ready);
                let ready = start + lat;
                self.acc += lat;
                if ready > self.max_ready {
                    self.max_ready = ready;
                }
                self.counts.bump(op);
                let node = match self.dfg.as_mut() {
                    Some(dfg) => dfg.push(op, lat as u64, a_node, b_node),
                    None => NO_NODE,
                };
                (ready, node)
            }
        }
    }

    /// Replay mode: pops the next recorded segment cost, or `None` when
    /// the context estimates live.
    ///
    /// # Panics
    ///
    /// Panics when the recorded trace is exhausted — the replayed process
    /// executed more segments than the recording, i.e. the cached trace
    /// belongs to a different workload configuration (stale cache key).
    pub(crate) fn pop_replay(&mut self) -> Option<(f64, Option<crate::recorder::SegDetail>)> {
        let cursor = self.replay.as_mut()?;
        let v = cursor.trace.get(cursor.next).copied().unwrap_or_else(|| {
            panic!(
                "segment replay trace exhausted after {} segments: \
                 the recorded trace does not match this process \
                 (stale or mismatched segment-cost cache entry)",
                cursor.next
            )
        });
        let detail = cursor
            .detail
            .as_ref()
            .and_then(|d| d.get(cursor.next).copied());
        cursor.next += 1;
        Some((v, detail))
    }

    /// Drains the finished segment out of both context tiers (fast slots
    /// and legacy fields — at most one holds non-zero accumulators),
    /// resets them for the next segment, seals the recorded DFG (caching
    /// its critical-path/sequential times) and hands the next segment a
    /// recycled node buffer from the arena.
    pub(crate) fn take_segment(&mut self) -> SegmentTake {
        let mut acc = std::mem::take(&mut self.acc);
        let mut max_ready = std::mem::take(&mut self.max_ready);
        let mut counts = std::mem::replace(&mut self.counts, OpCounts::new());
        let mut fast_ops = 0;
        let mut site_hits = 0;
        let mut site_misses = 0;
        FAST.with(|f| {
            acc += f.acc.replace(0.0);
            let mr = f.max_ready.replace(0.0);
            if mr > max_ready {
                max_ready = mr;
            }
            for (i, c) in f.counts.iter().enumerate() {
                let n = c.replace(0);
                counts.add_index(i, n);
                fast_ops += n;
            }
            site_hits = f.site_hits.replace(0);
            site_misses = f.site_misses.replace(0);
            f.seg_gen.set(f.seg_gen.get().wrapping_add(1));
        });
        let mut arena_reuse = 0;
        let dfg = match self.dfg.as_mut() {
            Some(d) => {
                let spare = std::mem::take(&mut self.dfg_spare);
                if spare.capacity() > 0 {
                    arena_reuse = 1;
                }
                let mut taken = std::mem::replace(d, Dfg::from_buffer(spare));
                taken.seal(&mut self.cp_scratch);
                Some(taken)
            }
            None => None,
        };
        SegmentTake {
            acc,
            max_ready,
            counts,
            dfg,
            fast_ops,
            site_hits,
            site_misses,
            arena_reuse,
        }
    }
}

/// Returns a no-longer-needed DFG's node buffer to the installed
/// context's arena, to be reused by an upcoming segment. No-op on
/// un-instrumented threads or for zero-capacity buffers.
pub(crate) fn recycle_dfg(dfg: Dfg) {
    let buf = dfg.into_buffer();
    if buf.capacity() == 0 {
        return;
    }
    let _ = with(|c| {
        if c.dfg_spare.capacity() < buf.capacity() {
            c.dfg_spare = buf;
        }
    });
}

/// Charges a standalone operation with no tracked operands (used by the
/// control-flow macros). Public because the `g_if!`/`g_while!`/`g_call!`
/// macros expand to calls to it; not intended for direct use.
#[doc(hidden)]
#[inline]
pub fn charge_op(op: Op) {
    let _ = charge(op, 0.0, NO_NODE, 0.0, NO_NODE);
}

/// Charges a conditional-branch evaluation (`if` / loop condition).
#[inline]
pub fn charge_branch() {
    charge_op(Op::Branch);
}

/// Charges a function-call overhead.
#[inline]
pub fn charge_call() {
    charge_op(Op::Call);
}

/// Builds a snapshot of the table as a dense array.
pub(crate) fn dense_costs(table: &CostTable) -> [f64; OP_COUNT] {
    *table.as_dense()
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers letting unit tests exercise charging without a simulator.
    use super::*;
    use crate::resource::Platform;
    use scperf_kernel::Time;

    /// Installs a context bound to a throwaway estimator and runs `f`,
    /// returning the context state afterwards (fast-slot accumulators
    /// folded back in by `uninstall`).
    pub(crate) fn with_test_ctx(
        kind: ResourceKind,
        table: CostTable,
        record_dfg: bool,
        f: impl FnOnce(),
    ) -> ThreadCtx {
        with_test_ctx_full(kind, table, record_dfg, false, MemoMode::Off, f)
    }

    /// [`with_test_ctx`] with explicit legacy-path and memo-mode knobs.
    pub(crate) fn with_test_ctx_full(
        kind: ResourceKind,
        table: CostTable,
        record_dfg: bool,
        legacy: bool,
        memo: MemoMode,
        f: impl FnOnce(),
    ) -> ThreadCtx {
        let mut platform = Platform::new();
        let resource = match kind {
            ResourceKind::Sequential => {
                platform.sequential("cpu", Time::ns(10), table.clone(), 0.0)
            }
            ResourceKind::Parallel => platform.parallel("hw", Time::ns(10), table.clone(), 0.0),
            ResourceKind::Environment => platform.environment("env"),
        };
        let est = EstimatorShared::new(platform, crate::Mode::EstimateOnly);
        install(ThreadCtx {
            est,
            pid: 0,
            resource,
            kind,
            costs: dense_costs(&table),
            k: 0.0,
            rtos_cycles: 0.0,
            acc: 0.0,
            counts: OpCounts::new(),
            max_ready: 0.0,
            dfg: record_dfg.then(Dfg::default),
            current_node: 0,
            replay: None,
            legacy,
            memo,
            progs: ProgStore::new(),
            rec_events: Vec::new(),
            rec_depth: 0,
            dfg_spare: Vec::new(),
            cp_scratch: Vec::new(),
        });
        f();
        uninstall().expect("context present")
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{with_test_ctx, with_test_ctx_full};
    use super::*;

    #[test]
    fn sequential_charging_accumulates_raw_costs() {
        let table = CostTable::from_pairs([(Op::Add, 1.5), (Op::Mul, 3.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            charge_op(Op::Add);
            charge_op(Op::Add);
            charge_op(Op::Mul);
        });
        assert_eq!(ctx.acc, 6.0);
        assert_eq!(ctx.counts.get(Op::Add), 2);
        assert_eq!(ctx.max_ready, 0.0);
    }

    #[test]
    fn parallel_charging_rounds_to_cycles() {
        let table = CostTable::from_pairs([(Op::Branch, 2.4)]);
        let ctx = with_test_ctx(ResourceKind::Parallel, table, false, || {
            charge_branch();
        });
        assert_eq!(ctx.acc, 3.0); // ceil(2.4)
        assert_eq!(ctx.max_ready, 3.0);
    }

    #[test]
    fn environment_charges_nothing() {
        let table = CostTable::risc_sw();
        let ctx = with_test_ctx(ResourceKind::Environment, table, false, || {
            charge_op(Op::Div);
        });
        assert_eq!(ctx.acc, 0.0);
        assert_eq!(ctx.counts.total(), 0);
    }

    #[test]
    fn charging_without_context_is_a_noop() {
        // Must not panic on an un-instrumented thread.
        charge_op(Op::Add);
        charge_branch();
        charge_call();
    }

    #[test]
    fn legacy_path_matches_fast_path_bit_for_bit() {
        let table = CostTable::figure3(); // fractional Branch: 2.4
        let run = |legacy| {
            with_test_ctx_full(
                ResourceKind::Sequential,
                table.clone(),
                false,
                legacy,
                MemoMode::Off,
                || {
                    for _ in 0..1000 {
                        charge_branch();
                        charge_op(Op::Assign);
                        charge_op(Op::Index);
                    }
                },
            )
        };
        let fast = run(false);
        let legacy = run(true);
        assert_eq!(fast.acc.to_bits(), legacy.acc.to_bits());
        assert_eq!(fast.counts, legacy.counts);
    }

    #[test]
    fn legacy_parallel_matches_fast_parallel() {
        let table = CostTable::asic_hw();
        let run = |legacy| {
            with_test_ctx_full(
                ResourceKind::Parallel,
                table.clone(),
                false,
                legacy,
                MemoMode::Off,
                || {
                    let mut ready = 0.0;
                    let mut node = NO_NODE;
                    for _ in 0..100 {
                        let (r, n) = charge(Op::FMul, ready, node, 0.5, NO_NODE);
                        ready = r;
                        node = n;
                        charge_op(Op::Add);
                    }
                },
            )
        };
        let fast = run(false);
        let legacy = run(true);
        assert_eq!(fast.acc.to_bits(), legacy.acc.to_bits());
        assert_eq!(fast.max_ready.to_bits(), legacy.max_ready.to_bits());
        assert_eq!(fast.counts, legacy.counts);
    }

    #[test]
    fn replaying_context_ignores_charges_and_pops_trace() {
        let table = CostTable::from_pairs([(Op::Add, 2.0)]);
        let mut ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {});
        ctx.replay = Some(ReplayCursor {
            trace: Arc::new(vec![7.5, 3.25]),
            detail: None,
            next: 0,
        });
        let (ready, node) = ctx.charge(Op::Add, 0.0, NO_NODE, 0.0, NO_NODE);
        assert_eq!((ready, node), (0.0, NO_NODE));
        assert_eq!(ctx.acc, 0.0, "replay must not accumulate");
        assert_eq!(ctx.counts.total(), 0);
        assert_eq!(ctx.pop_replay(), Some((7.5, None)));
        assert_eq!(ctx.pop_replay(), Some((3.25, None)));
    }

    #[test]
    fn live_context_does_not_pop() {
        let table = CostTable::from_pairs([(Op::Add, 2.0)]);
        let mut ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {});
        assert_eq!(ctx.pop_replay(), None);
    }

    #[test]
    fn take_segment_resets_state() {
        let table = CostTable::from_pairs([(Op::Add, 2.0)]);
        let mut ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            charge_op(Op::Add);
        });
        let take = ctx.take_segment();
        assert_eq!(take.acc, 2.0);
        assert_eq!(take.counts.get(Op::Add), 1);
        assert_eq!(ctx.acc, 0.0);
        assert_eq!(ctx.counts.total(), 0);
    }

    #[test]
    fn take_segment_reports_fast_op_count() {
        // take_segment drains the *live* fast slots when called with the
        // context still installed; exercise that path via `with`.
        let table = CostTable::from_pairs([(Op::Add, 1.0)]);
        let _ = with_test_ctx(ResourceKind::Sequential, table, false, || {
            charge_op(Op::Add);
            charge_op(Op::Add);
            let take = with(|c| c.take_segment()).expect("installed");
            assert_eq!(take.fast_ops, 2);
            assert_eq!(take.acc, 2.0);
            // Slots were reset: a new segment starts from zero.
            charge_op(Op::Add);
            let take = with(|c| c.take_segment()).expect("installed");
            assert_eq!(take.acc, 1.0);
            assert_eq!(take.fast_ops, 1);
        });
    }

    #[test]
    fn legacy_charges_do_not_count_as_fast_ops() {
        let table = CostTable::from_pairs([(Op::Add, 1.0)]);
        let _ = with_test_ctx_full(
            ResourceKind::Sequential,
            table,
            false,
            true,
            MemoMode::Off,
            || {
                charge_op(Op::Add);
                charge_op(Op::Add);
                let take = with(|c| c.take_segment()).expect("installed");
                assert_eq!(take.fast_ops, 0, "legacy ops must not count as fast");
                assert_eq!(take.acc, 2.0);
                assert_eq!(take.counts.get(Op::Add), 2);
            },
        );
    }
}
