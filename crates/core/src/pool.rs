//! Session pooling and snapshot/fork reuse.
//!
//! The paper's workflow is "build the model once, evaluate many mapping
//! scenarios" (§5). A long-running evaluation service pays full
//! [`SimConfig`](crate::SimConfig) → [`Session`] construction — thread
//! spawning, estimator registration, warmup estimation — on every
//! request unless something reuses that work. This module provides the
//! two reuse layers, modeled on wasmtime's pooling instance allocator
//! (preallocate slots, reset-and-reuse instead of rebuild, admission
//! limits instead of unbounded growth):
//!
//! * [`SessionPool`] — up to [`InstanceLimits::max_sessions`] reusable
//!   session slots, built lazily by a factory and returned to the free
//!   list by [`Session::reset`] when the [`PooledSession`] guard drops.
//!   Admission beyond the cap fails fast with [`PoolExhausted`] so the
//!   caller can tell clients to back off.
//! * [`Snapshot`] — a forkable image of a *warmed-up* session: the
//!   platform, the configuration knobs and every process's recorded
//!   segment-cost trace. Repeated requests for the same scenario shape
//!   fork the snapshot into a pooled slot and elaborate with the
//!   captured [`Replay`]s, skipping live estimation entirely.
//!
//! # Slot lifecycle
//!
//! ```text
//!          acquire()                 run + extract results
//! (empty) ──────────▶ live ◀──────────────────────────────┐
//!    ▲    factory      │ drop(PooledSession)              │
//!    │                 ▼                                  │
//!    └─ free list ◀─ reset()  ── acquire() ─▶ live ───────┘
//!                    (joins threads, clears kernel+estimator state,
//!                     keeps configuration; fork_into stamps a new
//!                     platform + replays on a snapshot hit)
//! ```
//!
//! Reset-vs-fresh bit-identity is the correctness contract: a reused
//! slot must be indistinguishable from a newly built session, verified
//! by the tests below and the `pool_props` property tests. A process
//! panic — including [`scperf_kernel::SimError::NonDeterminate`] — does
//! not poison the slot: reset clears the kernel's error latch.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scperf_sync::Mutex;

use crate::recorder::Replay;
use crate::resource::Platform;
use crate::session::{Session, SessionKnobs, SimConfig};

/// Admission knobs of a [`SessionPool`], in the style of wasmtime's
/// `InstanceLimits`: how many sessions may be live at once, and how
/// large a single slot's model may grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceLimits {
    /// Maximum concurrently live (acquired) sessions; acquiring beyond
    /// this fails with [`PoolExhausted`].
    pub max_sessions: usize,
    /// Maximum processes a single slot may spawn per scenario
    /// ([`PooledSession::enforce_limits`]).
    pub max_processes: usize,
    /// Maximum channels a single slot may create per scenario
    /// ([`PooledSession::enforce_limits`]).
    pub max_channels: usize,
}

impl Default for InstanceLimits {
    fn default() -> InstanceLimits {
        InstanceLimits {
            max_sessions: 8,
            max_processes: 256,
            max_channels: 256,
        }
    }
}

/// Admission failure: every pool slot is live. Callers should reject
/// the request and have the client retry later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted;

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("session pool exhausted: every slot is live")
    }
}

impl std::error::Error for PoolExhausted {}

/// A scenario elaborated more processes or channels than the slot's
/// [`InstanceLimits`] allow (see [`PooledSession::enforce_limits`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitExceeded {
    what: &'static str,
    used: usize,
    limit: usize,
}

impl fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pooled session exceeds the slot's {} limit: {} > {}",
            self.what, self.used, self.limit
        )
    }
}

impl std::error::Error for LimitExceeded {}

/// Counter snapshot of a [`SessionPool`] (see [`SessionPool::stats`];
/// exported as `pool.*` metrics by [`SessionPool::metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured slot capacity ([`InstanceLimits::max_sessions`]).
    pub slots: u64,
    /// Currently acquired (live) sessions.
    pub live: u64,
    /// Acquisitions that found a published snapshot for their shape.
    pub hits: u64,
    /// Acquisitions with no snapshot for their shape (first-of-shape).
    pub misses: u64,
    /// Snapshot forks stamped into slots (one per hit).
    pub forks: u64,
    /// Slots returned to reusable state by [`Session::reset`].
    pub resets: u64,
    /// Acquisitions rejected because every slot was live.
    pub exhausted: u64,
}

/// A forkable image of a warmed-up [`Session`]: platform,
/// configuration knobs and the recorded per-process segment-cost
/// traces. Captured by [`Session::snapshot`] after a run with
/// recording enabled; cheap to clone and share ([`Arc`] it once and
/// fork many times).
///
/// What a fork **shares** with the warmup run: the platform (cloned),
/// the configuration, and the recorded [`Replay`] traces (shared
/// behind `Arc`s — forking copies nothing). What it does **not**
/// share: kernel state (each fork elaborates and runs its own
/// simulation from time zero) and process bodies (Rust closures are
/// `FnOnce`; the caller re-elaborates, passing the replays to
/// [`Session::spawn_replaying`] so estimation is skipped).
#[derive(Debug, Clone)]
pub struct Snapshot {
    platform: Platform,
    knobs: SessionKnobs,
    replays: Vec<(String, Replay)>,
}

impl Snapshot {
    pub(crate) fn capture(session: &mut Session) -> Snapshot {
        let replays = session.recorder().replays();
        Snapshot {
            platform: session.model().platform(),
            knobs: session.knobs().clone(),
            replays,
        }
    }

    /// The platform the warmup ran on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The recorded trace of `process`, ready for
    /// [`Session::spawn_replaying`]. `None` for unknown processes.
    pub fn replay(&self, process: &str) -> Option<Replay> {
        self.replays
            .iter()
            .find(|(n, _)| n == process)
            .map(|(_, r)| r.clone())
    }

    /// All recorded traces, in process-registration order.
    pub fn replays(&self) -> &[(String, Replay)] {
        &self.replays
    }

    /// Builds a fresh [`Session`] with the snapshot's platform and
    /// configuration. A custom trace sink of the original config is the
    /// one knob that cannot be reproduced.
    pub fn fork(&self) -> Session {
        let mut config = SimConfig::new()
            .platform(self.platform.clone())
            .mode(self.knobs.mode)
            .attribution(self.knobs.attribution)
            .legacy_charging(self.knobs.legacy_charging)
            .site_memo(self.knobs.site_memo)
            .jobs(self.knobs.jobs)
            .handoff(self.knobs.handoff)
            .tracing(self.knobs.tracing);
        if self.knobs.record_costs {
            config = config.record_costs();
        }
        if self.knobs.record_instantaneous {
            config = config.record_instantaneous();
        }
        if self.knobs.record_dfgs {
            config = config.record_dfgs();
        }
        if let Some(limit) = self.knobs.run_limit {
            config = config.run_limit(limit);
        }
        config.build()
    }

    /// Stamps the snapshot into an existing (pooled) session slot:
    /// resets the slot and installs the snapshot's platform. The slot
    /// keeps its own kernel knobs (jobs, handoff) — pool slots are
    /// homogeneous by construction, so these already match. Elaborate
    /// the scenario with [`Snapshot::replay`] traces to skip live
    /// estimation.
    pub fn fork_into(&self, session: &mut Session) {
        session.reset_with_platform(self.platform.clone());
    }
}

struct PoolInner {
    free: Vec<Session>,
    created: usize,
}

/// A preallocated set of reusable [`Session`] slots with
/// [`InstanceLimits`] admission, plus a shape-keyed [`Snapshot`] store
/// — the "build once, evaluate many scenarios" allocator for a
/// simulation service. Slots are built lazily by the factory on first
/// acquisition and thereafter recycled through [`Session::reset`]
/// instead of rebuilt.
pub struct SessionPool {
    limits: InstanceLimits,
    build: Box<dyn Fn() -> Session + Send + Sync>,
    inner: Mutex<PoolInner>,
    snapshots: Mutex<HashMap<u64, Arc<Snapshot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    forks: AtomicU64,
    resets: AtomicU64,
    exhausted: AtomicU64,
}

impl SessionPool {
    /// Creates a pool of up to `limits.max_sessions` slots, each built
    /// on first use by `build`. The factory fixes the slots' kernel
    /// configuration (jobs, handoff, tracing); per-scenario variation —
    /// platform parameters, replays — is stamped in at acquisition.
    pub fn new(
        limits: InstanceLimits,
        build: impl Fn() -> Session + Send + Sync + 'static,
    ) -> SessionPool {
        SessionPool {
            limits,
            build: Box::new(build),
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                created: 0,
            }),
            snapshots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            forks: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// The pool's admission limits.
    pub fn limits(&self) -> InstanceLimits {
        self.limits
    }

    /// Acquires a slot (building it if the pool has spare capacity).
    /// The returned guard derefs to the slot's [`Session`], already
    /// reset; dropping it resets the slot and returns it to the pool.
    ///
    /// # Errors
    ///
    /// [`PoolExhausted`] when `max_sessions` sessions are already live.
    pub fn acquire(&self) -> Result<PooledSession<'_>, PoolExhausted> {
        let recycled = {
            let mut inner = self.inner.lock();
            match inner.free.pop() {
                Some(s) => Some(s),
                None if inner.created < self.limits.max_sessions => {
                    inner.created += 1;
                    None
                }
                None => {
                    self.exhausted.fetch_add(1, Ordering::Relaxed);
                    return Err(PoolExhausted);
                }
            }
        };
        // Build outside the lock; the capacity reservation above keeps
        // concurrent acquirers within `max_sessions`.
        let session = recycled.unwrap_or_else(|| (self.build)());
        Ok(PooledSession {
            pool: self,
            session: Some(session),
            snapshot: None,
        })
    }

    /// [`SessionPool::acquire`], keyed by scenario shape: when a
    /// [`Snapshot`] has been published for `shape`, it is forked into
    /// the slot (a *hit* — elaborate with [`PooledSession::forked_snapshot`]
    /// replays and skip warmup); otherwise the caller runs the
    /// first-of-shape warmup and should publish a snapshot afterwards
    /// (a *miss*).
    ///
    /// # Errors
    ///
    /// [`PoolExhausted`] when `max_sessions` sessions are already live.
    pub fn acquire_for_shape(&self, shape: u64) -> Result<PooledSession<'_>, PoolExhausted> {
        let mut pooled = self.acquire()?;
        match self.snapshot_for(shape) {
            Some(snap) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.forks.fetch_add(1, Ordering::Relaxed);
                snap.fork_into(&mut pooled);
                pooled.snapshot = Some(snap);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(pooled)
    }

    /// Publishes the warmed-up snapshot for `shape`; subsequent
    /// [`SessionPool::acquire_for_shape`] calls with the same shape
    /// fork it instead of warming up again.
    pub fn publish_snapshot(&self, shape: u64, snapshot: Snapshot) {
        self.snapshots.lock().insert(shape, Arc::new(snapshot));
    }

    /// The published snapshot for `shape`, if any.
    pub fn snapshot_for(&self, shape: u64) -> Option<Arc<Snapshot>> {
        self.snapshots.lock().get(&shape).cloned()
    }

    /// Counter snapshot (`slots`, `live`, `hits`, `misses`, `forks`,
    /// `resets`, `exhausted`).
    pub fn stats(&self) -> PoolStats {
        let (created, free) = {
            let inner = self.inner.lock();
            (inner.created, inner.free.len())
        };
        PoolStats {
            slots: self.limits.max_sessions as u64,
            live: (created - free) as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            forks: self.forks.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }

    /// The pool counters as a `pool.*` metrics snapshot, mergeable into
    /// a service's telemetry.
    pub fn metrics(&self) -> scperf_obs::MetricsSnapshot {
        let s = self.stats();
        let mut m = scperf_obs::MetricsSnapshot::new();
        m.set_counter("pool.slots", s.slots);
        m.set_gauge("pool.live", s.live as f64);
        m.set_counter("pool.hits", s.hits);
        m.set_counter("pool.misses", s.misses);
        m.set_counter("pool.forks", s.forks);
        m.set_counter("pool.resets", s.resets);
        m.set_counter("pool.exhausted", s.exhausted);
        m
    }

    fn release(&self, mut session: Session) {
        // Reset on release (not on acquire): a panicked or
        // NonDeterminate run must not leave a poisoned simulator in the
        // free list, and acquire stays cheap.
        session.reset();
        self.resets.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().free.push(session);
    }
}

impl fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionPool")
            .field("limits", &self.limits)
            .field("stats", &self.stats())
            .finish()
    }
}

/// RAII guard over an acquired pool slot: derefs to the slot's
/// [`Session`]; dropping it resets the slot and returns it to the
/// pool's free list.
pub struct PooledSession<'a> {
    pool: &'a SessionPool,
    session: Option<Session>,
    snapshot: Option<Arc<Snapshot>>,
}

impl PooledSession<'_> {
    /// The snapshot forked into this slot, when
    /// [`SessionPool::acquire_for_shape`] hit one — elaborate with its
    /// replays to skip live estimation. (Named distinctly from
    /// [`Session::snapshot`], which *captures* a new snapshot and stays
    /// reachable through deref.)
    pub fn forked_snapshot(&self) -> Option<&Arc<Snapshot>> {
        self.snapshot.as_ref()
    }

    /// Checks the elaborated scenario against the slot's per-slot
    /// [`InstanceLimits`]; call after spawning processes and creating
    /// channels, before running.
    ///
    /// # Errors
    ///
    /// [`LimitExceeded`] naming the violated limit.
    pub fn enforce_limits(&mut self) -> Result<(), LimitExceeded> {
        let limits = self.pool.limits;
        let sim = self.session.as_mut().expect("slot present").sim();
        let procs = sim.process_count();
        if procs > limits.max_processes {
            return Err(LimitExceeded {
                what: "process",
                used: procs,
                limit: limits.max_processes,
            });
        }
        let chans = sim.channel_count();
        if chans > limits.max_channels {
            return Err(LimitExceeded {
                what: "channel",
                used: chans,
                limit: limits.max_channels,
            });
        }
        Ok(())
    }
}

impl std::ops::Deref for PooledSession<'_> {
    type Target = Session;

    fn deref(&self) -> &Session {
        self.session.as_ref().expect("slot present")
    }
}

impl std::ops::DerefMut for PooledSession<'_> {
    fn deref_mut(&mut self) -> &mut Session {
        self.session.as_mut().expect("slot present")
    }
}

impl Drop for PooledSession<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.pool.release(session);
        }
    }
}

impl fmt::Debug for PooledSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledSession")
            .field("snapshot", &self.snapshot.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTable;
    use crate::gval::g_i64;
    use crate::resource::ResourceId;
    use scperf_kernel::Time;

    fn one_cpu() -> (Platform, ResourceId) {
        let mut p = Platform::new();
        let cpu = p.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 50.0);
        (p, cpu)
    }

    fn elaborate(session: &mut Session, cpu: ResourceId) {
        let ch = session.fifo::<i64>("out", 2);
        let tx = ch.clone();
        session.spawn("worker", cpu, move |ctx| {
            let mut acc = g_i64(0);
            for i in 0..16 {
                acc = acc + g_i64(i) * g_i64(3);
            }
            tx.write(ctx, acc.get());
        });
        session.spawn_untimed("sink", move |ctx| {
            let _ = ch.read(ctx);
        });
    }

    #[test]
    fn reset_session_is_bit_identical_to_fresh() {
        use scperf_kernel::TraceMode;
        let (platform, cpu) = one_cpu();
        let fresh = {
            let mut s = SimConfig::new()
                .platform(platform.clone())
                .tracing(TraceMode::Unbounded)
                .build();
            elaborate(&mut s, cpu);
            let summary = s.run().unwrap();
            let trace = s.take_events();
            (summary, s.report(), trace)
        };
        // Same config, but run an unrelated scenario first, then reset.
        let mut s = SimConfig::new()
            .platform(platform)
            .tracing(TraceMode::Unbounded)
            .build();
        s.spawn("other", cpu, |_ctx| {
            let _ = g_i64(5) * g_i64(7);
        });
        s.run().unwrap();
        s.reset();
        elaborate(&mut s, cpu);
        let summary = s.run().unwrap();
        assert_eq!(summary, fresh.0);
        assert_eq!(s.report(), fresh.1);
        assert_eq!(s.take_events().events, fresh.2.events);
    }

    #[test]
    fn snapshot_fork_replays_bit_identically() {
        let (platform, cpu) = one_cpu();
        let mut warm = SimConfig::new().platform(platform).record_costs().build();
        elaborate(&mut warm, cpu);
        let live = warm.run().unwrap();
        let live_report = warm.report();
        let snapshot = warm.snapshot();

        let mut fork = snapshot.fork();
        let replay = snapshot.replay("worker").expect("recorded");
        let ch = fork.fifo::<i64>("out", 2);
        let tx = ch.clone();
        fork.spawn_replaying("worker", cpu, replay, move |ctx| {
            tx.write(ctx, 360);
        });
        fork.spawn_untimed("sink", move |ctx| {
            let _ = ch.read(ctx);
        });
        let replayed = fork.run().unwrap();
        assert_eq!(replayed, live);
        // Recorder-captured replays carry op counts and HW extremes, so
        // the forked report matches the live one bit for bit.
        assert_eq!(fork.report(), live_report);
    }

    #[test]
    fn pool_recycles_slots_and_counts_reuse() {
        let (platform, cpu) = one_cpu();
        let limits = InstanceLimits {
            max_sessions: 1,
            ..InstanceLimits::default()
        };
        let pool = SessionPool::new(limits, {
            let platform = platform.clone();
            move || SimConfig::new().platform(platform.clone()).build()
        });
        let shape = 42;

        // Miss: no snapshot yet — warm up, record, publish.
        {
            let mut slot = pool.acquire_for_shape(shape).unwrap();
            assert!(slot.forked_snapshot().is_none());
            slot.recorder();
            elaborate(&mut slot, cpu);
            slot.enforce_limits().unwrap();
            slot.run().unwrap();
            let snap = Session::snapshot(&mut slot);
            pool.publish_snapshot(shape, snap);
            // Exhaustion: the only slot is live.
            assert!(pool.acquire().is_err());
        }

        // Hit: the recycled slot is forked from the snapshot.
        {
            let slot = pool.acquire_for_shape(shape).unwrap();
            let snap = slot.forked_snapshot().expect("snapshot hit");
            assert!(snap.replay("worker").is_some());
        }

        let stats = pool.stats();
        assert_eq!(stats.slots, 1);
        assert_eq!(stats.live, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.forks, 1);
        assert_eq!(stats.resets, 2);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(pool.metrics().counter("pool.hits"), Some(1));
    }

    #[test]
    fn per_slot_limits_reject_oversized_scenarios() {
        let (platform, cpu) = one_cpu();
        let limits = InstanceLimits {
            max_sessions: 1,
            max_processes: 1,
            max_channels: 8,
        };
        let pool = SessionPool::new(limits, {
            let platform = platform.clone();
            move || SimConfig::new().platform(platform.clone()).build()
        });
        let mut slot = pool.acquire().unwrap();
        elaborate(&mut slot, cpu); // spawns 2 processes
        let err = slot.enforce_limits().unwrap_err();
        assert!(err.to_string().contains("process limit"));
    }
}
