//! Non-determinism detection (§6).
//!
//! "This method maintains the global behavior of the description although
//! the execution order of processes can change as a result of the
//! architectural mapping decisions. If results are different from the
//! original system-level specification, it means that the description is
//! not deterministic (potentially wrong). … Thus, the library becomes a
//! powerful verification tool."
//!
//! [`check`] runs the same model twice — once untimed, once strict-timed —
//! and diffs the per-process functional traces.

use scperf_kernel::{trace, SimError, Simulator, TraceRecord};

use crate::estimator::Mode;
use crate::model::PerfModel;
use crate::resource::Platform;

/// The result of a determinism check.
#[derive(Debug, Clone)]
pub struct DeterminismOutcome {
    /// `true` when untimed and strict-timed runs agree on every process's
    /// observable behaviour.
    pub deterministic: bool,
    /// Processes whose functional trace differs between the two runs.
    pub differing: Vec<String>,
    /// Trace of the untimed ([`Mode::EstimateOnly`]) run.
    pub untimed_trace: Vec<TraceRecord>,
    /// Trace of the strict-timed run.
    pub timed_trace: Vec<TraceRecord>,
}

/// Runs `build`'s model under both simulation modes and compares the
/// functional (value-carrying) content of the traces per process.
///
/// `build` must construct the *same* model each time it is called — it
/// receives a fresh [`Simulator`] and [`PerfModel`] per run.
///
/// # Errors
///
/// Propagates any [`SimError`] from either run.
///
/// # Examples
///
/// ```
/// use scperf_core::{determinism, CostTable, Platform};
/// use scperf_kernel::Time;
///
/// let mut platform = Platform::new();
/// let cpu = platform.sequential("cpu", Time::ns(10), CostTable::risc_sw(), 0.0);
/// let outcome = determinism::check(&platform, |sim, model| {
///     let ch = model.fifo::<i32>(sim, "c", 2);
///     let tx = ch.clone();
///     model.spawn(sim, "producer", cpu, move |ctx| {
///         tx.write(ctx, 42);
///     });
///     model.spawn(sim, "consumer", cpu, move |ctx| {
///         let _ = ch.read(ctx);
///     });
/// })?;
/// assert!(outcome.deterministic);
/// # Ok::<(), scperf_kernel::SimError>(())
/// ```
pub fn check<F>(platform: &Platform, build: F) -> Result<DeterminismOutcome, SimError>
where
    F: Fn(&mut Simulator, &PerfModel),
{
    let run = |mode: Mode| -> Result<Vec<TraceRecord>, SimError> {
        let mut sim = Simulator::new();
        sim.enable_tracing();
        let model = PerfModel::new(platform.clone(), mode);
        build(&mut sim, &model);
        sim.run()?;
        Ok(sim.take_trace())
    };
    let untimed_trace = run(Mode::EstimateOnly)?;
    let timed_trace = run(Mode::StrictTimed)?;
    let differing = trace::compare_traces(&untimed_trace, &timed_trace);
    Ok(DeterminismOutcome {
        deterministic: differing.is_empty(),
        differing,
        untimed_trace,
        timed_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTable;
    use scperf_kernel::Time;

    fn one_cpu() -> (Platform, crate::resource::ResourceId) {
        let mut p = Platform::new();
        let cpu = p.sequential("cpu", Time::ns(10), CostTable::risc_sw(), 10.0);
        (p, cpu)
    }

    #[test]
    fn deterministic_pipeline_passes() {
        let (platform, cpu) = one_cpu();
        let outcome = check(&platform, |sim, model| {
            let ch = model.fifo::<i64>(sim, "c", 2);
            let tx = ch.clone();
            model.spawn(sim, "producer", cpu, move |ctx| {
                for i in 0..5 {
                    let v = crate::gval::g_i64(i) * 2;
                    tx.write(ctx, v.get());
                }
            });
            model.spawn(sim, "consumer", cpu, move |ctx| {
                for _ in 0..5 {
                    let _ = ch.read(ctx);
                }
            });
        })
        .unwrap();
        assert!(outcome.deterministic, "differing: {:?}", outcome.differing);
        assert!(!outcome.timed_trace.is_empty());
    }

    #[test]
    fn racy_model_is_flagged() {
        // Two producers on *different* CPUs race into one FIFO; the
        // consumer's observed value order depends on scheduling. Untimed,
        // "slow" (lower pid) writes first; strict-timed, its heavy segment
        // makes it write much later than "fast".
        let (mut platform, cpu) = one_cpu();
        let cpu2 = platform.sequential("cpu2", Time::ns(10), CostTable::risc_sw(), 10.0);
        let outcome = check(&platform, move |sim, model| {
            let ch = model.fifo::<i64>(sim, "c", 4);
            let tx1 = ch.clone();
            let tx2 = ch.clone();
            model.spawn(sim, "slow", cpu, move |ctx| {
                let mut acc = crate::gval::g_i64(0);
                for i in 0..2000 {
                    acc = acc + i;
                }
                tx1.write(ctx, acc.get());
            });
            model.spawn(sim, "fast", cpu2, move |ctx| {
                tx2.write(ctx, -1);
            });
            model.spawn(sim, "consumer", cpu, move |ctx| {
                let a = ch.read(ctx);
                let b = ch.read(ctx);
                ctx.emit_trace("order", format!("{a},{b}"));
            });
        })
        .unwrap();
        assert!(!outcome.deterministic);
        assert!(outcome.differing.iter().any(|p| p == "consumer"));
    }
}
