//! Operation classes and per-resource cost tables.
//!
//! Following §3 of the paper, every elementary C++-level operation is
//! characterized, for each platform resource, by its execution time in
//! (possibly fractional) processor/FU cycles. The estimation library charges
//! these costs as annotated code executes.

use std::fmt;
use std::ops::{Index, IndexMut};

/// The elementary operation classes the library charges for.
///
/// These correspond to the "C++ objects" of the paper's Figure 3 (`=`, `+`,
/// `<`, `[]`, `if`, function call) extended with the classes the benchmark
/// set needs (multiplication, division, logic, shifts and their
/// floating-point counterparts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Op {
    /// Assignment (`=`), including initialization.
    Assign = 0,
    /// Integer addition / subtraction / negation (`+`, `-`).
    Add,
    /// Integer multiplication (`*`).
    Mul,
    /// Integer division / remainder (`/`, `%`).
    Div,
    /// Floating-point addition / subtraction.
    FAdd,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Comparison (`<`, `<=`, `==`, …).
    Cmp,
    /// Bitwise / boolean logic (`&`, `|`, `^`, `!`).
    Logic,
    /// Shifts (`<<`, `>>`).
    Shift,
    /// Array indexing (`[]`).
    Index,
    /// Conditional branch (`if`, loop condition).
    Branch,
    /// Function call overhead.
    Call,
}

/// Number of operation classes.
pub const OP_COUNT: usize = 13;

/// All operation classes, in discriminant order.
pub const ALL_OPS: [Op; OP_COUNT] = [
    Op::Assign,
    Op::Add,
    Op::Mul,
    Op::Div,
    Op::FAdd,
    Op::FMul,
    Op::FDiv,
    Op::Cmp,
    Op::Logic,
    Op::Shift,
    Op::Index,
    Op::Branch,
    Op::Call,
];

impl Op {
    /// Stable index of this operation class (0-based, dense).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short mnemonic used in reports and CSV headers.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Op::Assign => "=",
            Op::Add => "+",
            Op::Mul => "*",
            Op::Div => "/",
            Op::FAdd => "f+",
            Op::FMul => "f*",
            Op::FDiv => "f/",
            Op::Cmp => "<",
            Op::Logic => "&",
            Op::Shift => "<<",
            Op::Index => "[]",
            Op::Branch => "if",
            Op::Call => "call",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Per-resource execution cost of each [`Op`], in fractional cycles.
///
/// Cost tables are typically provided by the platform vendor (per §3) or
/// fitted from ISS measurements with
/// [`calibration`](https://docs.rs/scperf-iss) — see `scperf-iss`'s
/// `calibrate` module.
///
/// # Examples
///
/// ```
/// use scperf_core::{CostTable, Op};
///
/// let mut table = CostTable::zero();
/// table[Op::Add] = 1.0;
/// table[Op::Mul] = 3.0;
/// assert_eq!(table[Op::Mul], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    cycles: [f64; OP_COUNT],
}

impl CostTable {
    /// A table with every cost set to zero.
    pub const fn zero() -> CostTable {
        CostTable {
            cycles: [0.0; OP_COUNT],
        }
    }

    /// Builds a table from `(op, cycles)` pairs; unspecified ops cost zero.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Op, f64)>) -> CostTable {
        let mut t = CostTable::zero();
        for (op, c) in pairs {
            t.cycles[op.index()] = c;
        }
        t
    }

    /// Builds a table from a dense cost vector in [`ALL_OPS`] order.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len() != OP_COUNT`.
    pub fn from_dense(costs: &[f64]) -> CostTable {
        assert_eq!(costs.len(), OP_COUNT, "expected {OP_COUNT} costs");
        let mut t = CostTable::zero();
        t.cycles.copy_from_slice(costs);
        t
    }

    /// The dense cost vector in [`ALL_OPS`] order.
    pub fn as_dense(&self) -> &[f64; OP_COUNT] {
        &self.cycles
    }

    /// Default table for a simple in-order RISC software resource.
    ///
    /// The values mirror the instruction sequences a non-optimizing compiler
    /// emits for each source-level operation on a scalar in-order core of
    /// the OpenRISC class (loads/stores around ALU ops, multi-cycle
    /// multiply/divide, software floating point). They serve as a starting
    /// point; Table 1 experiments replace them with ISS-calibrated values.
    pub fn risc_sw() -> CostTable {
        CostTable::from_pairs([
            (Op::Assign, 2.0),
            (Op::Add, 1.0),
            (Op::Mul, 3.0),
            (Op::Div, 33.0),
            (Op::FAdd, 40.0),
            (Op::FMul, 50.0),
            (Op::FDiv, 90.0),
            (Op::Cmp, 1.0),
            (Op::Logic, 1.0),
            (Op::Shift, 1.0),
            (Op::Index, 3.0),
            (Op::Branch, 2.0),
            (Op::Call, 6.0),
        ])
    }

    /// Default table for a hardware (parallel) resource: functional-unit
    /// *combinational delays* in (fractional) clock cycles at the target
    /// frequency. Wiring-only "operations" (assignment) are free; control
    /// is a mux. The estimation library rounds each operation up to a whole
    /// number of cycles (§3: "a multiple of the clock period"); a synthesis
    /// tool with operation chaining works with the raw delays — the gap
    /// between the two is exactly the HW estimation error of Tables 2/4.
    pub fn asic_hw() -> CostTable {
        CostTable::from_pairs([
            (Op::Assign, 0.0),
            (Op::Add, 0.9),
            (Op::Mul, 1.9),
            (Op::Div, 7.8),
            (Op::FAdd, 2.8),
            (Op::FMul, 3.7),
            (Op::FDiv, 14.6),
            (Op::Cmp, 0.85),
            (Op::Logic, 0.8),
            (Op::Shift, 0.8),
            (Op::Index, 0.95),
            (Op::Branch, 0.9),
            (Op::Call, 0.0),
        ])
    }

    /// `true` when every cost is a finite whole number of cycles.
    ///
    /// Integer-valued tables are special for the estimator: every partial
    /// sum of costs is an exactly representable `f64` integer (below
    /// 2⁵³), so segment-site memoization can replay a recorded cost
    /// *delta* with one addition and still be bit-identical to per-op
    /// charging. Fractional tables (e.g. [`CostTable::figure3`]'s 2.4
    /// branch) disable memoization and always charge live.
    pub fn is_integral(&self) -> bool {
        self.cycles
            .iter()
            .all(|c| c.is_finite() && c.fract() == 0.0)
    }

    /// The worked example of the paper's Figure 3: `=`:2, `+`:1, `<`:3,
    /// `[]`:5, `if`:2.4, call:18.
    pub fn figure3() -> CostTable {
        CostTable::from_pairs([
            (Op::Assign, 2.0),
            (Op::Add, 1.0),
            (Op::Cmp, 3.0),
            (Op::Index, 5.0),
            (Op::Branch, 2.4),
            (Op::Call, 18.0),
        ])
    }
}

impl Default for CostTable {
    /// Same as [`CostTable::risc_sw`].
    fn default() -> CostTable {
        CostTable::risc_sw()
    }
}

impl Index<Op> for CostTable {
    type Output = f64;
    #[inline]
    fn index(&self, op: Op) -> &f64 {
        &self.cycles[op.index()]
    }
}

impl IndexMut<Op> for CostTable {
    #[inline]
    fn index_mut(&mut self, op: Op) -> &mut f64 {
        &mut self.cycles[op.index()]
    }
}

/// A per-[`Op`] execution counter, used for segment statistics and for
/// building calibration systems (`counts · costs = cycles`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    counts: [u64; OP_COUNT],
}

impl OpCounts {
    /// All-zero counts.
    pub const fn new() -> OpCounts {
        OpCounts {
            counts: [0; OP_COUNT],
        }
    }

    /// Increments the counter for `op`.
    #[inline]
    pub fn bump(&mut self, op: Op) {
        self.counts[op.index()] += 1;
    }

    /// The count for `op`.
    #[inline]
    pub fn get(&self, op: Op) -> u64 {
        self.counts[op.index()]
    }

    /// Total operations counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The dense count vector in [`ALL_OPS`] order.
    pub fn as_dense(&self) -> &[u64; OP_COUNT] {
        &self.counts
    }

    /// Dot product with a cost table: the sequential-execution cycle count
    /// these operations take.
    pub fn dot(&self, table: &CostTable) -> f64 {
        self.counts
            .iter()
            .zip(table.as_dense())
            .map(|(&n, &c)| n as f64 * c)
            .sum()
    }

    /// Adds another counter element-wise.
    pub fn merge(&mut self, other: &OpCounts) {
        for i in 0..OP_COUNT {
            self.counts[i] += other.counts[i];
        }
    }

    /// Adds `n` to the counter at dense index `i` (fast-path drains).
    #[inline]
    pub(crate) fn add_index(&mut self, i: usize, n: u64) {
        self.counts[i] += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_indices_are_dense_and_unique() {
        for (i, op) in ALL_OPS.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn table_round_trips_dense() {
        let t = CostTable::risc_sw();
        let t2 = CostTable::from_dense(t.as_dense());
        assert_eq!(t, t2);
    }

    #[test]
    fn from_pairs_defaults_to_zero() {
        let t = CostTable::from_pairs([(Op::Mul, 4.0)]);
        assert_eq!(t[Op::Mul], 4.0);
        assert_eq!(t[Op::Add], 0.0);
    }

    #[test]
    fn counts_dot_costs() {
        let mut counts = OpCounts::new();
        counts.bump(Op::Add);
        counts.bump(Op::Add);
        counts.bump(Op::Mul);
        let t = CostTable::from_pairs([(Op::Add, 1.5), (Op::Mul, 3.0)]);
        assert_eq!(counts.dot(&t), 6.0);
        assert_eq!(counts.total(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpCounts::new();
        a.bump(Op::Div);
        let mut b = OpCounts::new();
        b.bump(Op::Div);
        b.bump(Op::Call);
        a.merge(&b);
        assert_eq!(a.get(Op::Div), 2);
        assert_eq!(a.get(Op::Call), 1);
    }

    #[test]
    #[should_panic(expected = "expected 13 costs")]
    fn from_dense_rejects_wrong_len() {
        let _ = CostTable::from_dense(&[1.0; 3]);
    }

    #[test]
    fn integral_tables_are_detected() {
        assert!(CostTable::risc_sw().is_integral());
        assert!(CostTable::zero().is_integral());
        assert!(!CostTable::figure3().is_integral(), "Branch is 2.4");
        assert!(!CostTable::asic_hw().is_integral());
        assert!(!CostTable::from_pairs([(Op::Add, f64::INFINITY)]).is_integral());
    }

    #[test]
    fn figure3_table_matches_paper() {
        let t = CostTable::figure3();
        assert_eq!(t[Op::Assign], 2.0);
        assert_eq!(t[Op::Add], 1.0);
        assert_eq!(t[Op::Cmp], 3.0);
        assert_eq!(t[Op::Index], 5.0);
        assert_eq!(t[Op::Branch], 2.4);
        assert_eq!(t[Op::Call], 18.0);
    }
}
