//! Control-flow annotation macros.
//!
//! The paper annotates `if` statements and function calls through operator
//! overloading and parser-inserted marks. Rust cannot overload control
//! flow, so annotated code spells the marks with these macros; each charges
//! the corresponding [`crate::Op`] cost before executing the ordinary Rust
//! construct, leaving semantics untouched.

/// An annotated `if`: charges one [`crate::Op::Branch`], then evaluates the
/// condition (whose own comparisons charge their [`crate::Op::Cmp`] costs)
/// and runs the chosen arm.
///
/// ```
/// use scperf_core::{g_if, g_i32};
///
/// let a = g_i32(1);
/// let mut hit = false;
/// g_if!((a < 2) {
///     hit = true;
/// } else {
///     unreachable!();
/// });
/// assert!(hit);
/// ```
#[macro_export]
macro_rules! g_if {
    (($cond:expr) $then:block else $else_:block) => {{
        $crate::charge_branch();
        if $cond $then else $else_
    }};
    (($cond:expr) $then:block) => {{
        $crate::charge_branch();
        if $cond $then
    }};
}

/// An annotated `while` loop: charges one [`crate::Op::Branch`] per
/// condition evaluation, including the final failing one.
///
/// ```
/// use scperf_core::{g_while, g_i32};
///
/// let mut i = g_i32(0);
/// let mut n = 0;
/// g_while!((i < 3) {
///     i = i + 1;
///     n += 1;
/// });
/// assert_eq!(n, 3);
/// ```
#[macro_export]
macro_rules! g_while {
    (($cond:expr) $body:block) => {
        loop {
            $crate::charge_branch();
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let cond = $cond;
            if !cond {
                break;
            }
            $body
        }
    };
}

/// An annotated counted loop: charges the canonical `for`-statement
/// bookkeeping per iteration — the increment (`i = i + 1`:
/// [`crate::Op::Assign`] + [`crate::Op::Add`]), the bound test
/// ([`crate::Op::Cmp`]) and the branch ([`crate::Op::Branch`]) — exactly
/// what a compiled `for (i = 0; i < n; i = i + 1)` executes each time
/// around.
///
/// ```
/// use scperf_core::g_for;
///
/// let mut sum = 0;
/// g_for!(i in 0..4 => {
///     sum += i;
/// });
/// assert_eq!(sum, 6);
/// ```
#[macro_export]
macro_rules! g_for {
    ($i:ident in $range:expr => $body:block) => {
        for $i in $range {
            $crate::charge_op($crate::Op::Assign);
            $crate::charge_op($crate::Op::Add);
            $crate::charge_op($crate::Op::Cmp);
            $crate::charge_branch();
            $body
        }
    };
}

/// A memoizable annotated counted loop: [`g_for!`] wrapped in a single
/// *whole-loop* segment-site region, so on sequential resources with
/// integer-valued cost tables every repeat of the loop is satisfied by
/// one compiled-program apply instead of per-op (or even per-iteration)
/// charging. The trip count — taken from the range via
/// [`ExactSizeIterator::len`] — is folded into the site key, so
/// different trip counts compile into different programs; uniform
/// bodies additionally collapse into a [`crate::Instr::Loop`]
/// instruction when the program serializes.
///
/// Charges exactly what [`g_for!`] charges — the loop bookkeeping
/// ([`crate::Op::Assign`] + [`crate::Op::Add`] + [`crate::Op::Cmp`] +
/// [`crate::Op::Branch`]) is inside the memoized region, so replayed
/// loops are bit-identical to live ones.
///
/// Use only when the loop's charge stream is determined by the trip
/// count and the key (no data-dependent `g_if!` arms or early exits
/// that depend on element values). If the stream depends on a value you
/// can name, fold it into the key with the keyed form — the key
/// expression is evaluated **once**, before the first iteration;
/// [`crate::MemoMode::Verify`] re-charges every hit live and asserts
/// bit-equality, catching misuse.
///
/// ```
/// use scperf_core::g_loop;
///
/// let mut sum = 0;
/// g_loop!(i in 0..4 => {
///     sum += i;
/// });
/// assert_eq!(sum, 6);
/// ```
#[macro_export]
macro_rules! g_loop {
    ($i:ident in $range:expr => $body:block) => {
        $crate::g_loop!($i in $range, key = 0u64 => $body)
    };
    ($i:ident in $range:expr, key = $key:expr => $body:block) => {{
        static __SCPERF_SITE: $crate::SegmentSite =
            $crate::SegmentSite::named(concat!(file!(), ':', line!(), ':', column!()));
        let __scperf_iter = ::core::iter::IntoIterator::into_iter($range);
        let __scperf_trips = ::core::iter::ExactSizeIterator::len(&__scperf_iter) as u64;
        let mut __scperf_guard =
            $crate::site_enter_loop(&__SCPERF_SITE, $key, __scperf_trips);
        for $i in __scperf_iter {
            __scperf_guard.loop_iter();
            $crate::charge_op($crate::Op::Assign);
            $crate::charge_op($crate::Op::Add);
            $crate::charge_op($crate::Op::Cmp);
            $crate::charge_branch();
            $body
        }
        drop(__scperf_guard);
    }};
}

/// A memoizable straight-line region (block form of [`g_loop!`]): the
/// first execution per key records the charge delta, repeats apply it in
/// one step. Evaluates to the block's value. Charges nothing by itself.
///
/// The optional key distinguishes executions with different charge
/// streams — e.g. a data-dependent trip count:
///
/// ```
/// use scperf_core::{g_for, g_site};
///
/// let k = 3usize;
/// let sum = g_site!((k as u64) {
///     let mut s = 0;
///     g_for!(i in 0..k => { s += i; });
///     s
/// });
/// assert_eq!(sum, 3);
/// ```
#[macro_export]
macro_rules! g_site {
    (($key:expr) $body:block) => {{
        static __SCPERF_SITE: $crate::SegmentSite =
            $crate::SegmentSite::named(concat!(file!(), ':', line!(), ':', column!()));
        let __scperf_guard = $crate::site_enter(&__SCPERF_SITE, $key);
        let __scperf_value = $body;
        drop(__scperf_guard);
        __scperf_value
    }};
    ($body:block) => {
        $crate::g_site!((0u64) $body)
    };
}

/// A memoized region with a **native twin**: once the region's cost
/// program is compiled, repeat executions charge the program in one
/// step and run the `native` block — plain, uncharged Rust mirroring
/// the annotated block's data effects — instead of the annotated body.
/// This is the host-compiled simulation move the paper's single-source
/// methodology enables: functionality at native speed, timing from the
/// pre-compiled cost program.
///
/// The two blocks **must be data-equivalent**: same stores, same
/// wrapping arithmetic, and the native block must not charge or wait.
/// The annotated block runs on the first execution per key (recording
/// the program), in [`MemoMode::Off`](crate::MemoMode) and
/// [`MemoMode::Verify`](crate::MemoMode), on non-sequential resources
/// and on the legacy path — so the annotated semantics remain the
/// source of truth, and verify mode still checks programs against live
/// charging.
///
/// ```
/// use scperf_core::{g_for, g_twin, GArr};
///
/// let mut sq = GArr::<i32>::zeroed(8);
/// g_twin!((sq.len() as u64) {
///     g_for!(i in 0..sq.len() => {
///         sq.set_raw(i, (scperf_core::G::raw(i as i32) * scperf_core::G::raw(i as i32)));
///     });
/// } native {
///     for i in 0..sq.len() {
///         sq.poke(i, (i as i32).wrapping_mul(i as i32));
///     }
/// });
/// assert_eq!(sq.peek(7), 49);
/// ```
#[macro_export]
macro_rules! g_twin {
    (($key:expr) $annotated:block native $native:block) => {{
        static __SCPERF_SITE: $crate::SegmentSite =
            $crate::SegmentSite::named(concat!(file!(), ':', line!(), ':', column!()));
        let __scperf_key: u64 = $key;
        if $crate::site_try_native(&__SCPERF_SITE, __scperf_key) {
            $native
        } else {
            let __scperf_guard = $crate::site_enter(&__SCPERF_SITE, __scperf_key);
            let __scperf_value = $annotated;
            drop(__scperf_guard);
            __scperf_value
        }
    }};
}

/// An annotated function call: charges one [`crate::Op::Call`] for the
/// call/return overhead plus one [`crate::Op::Assign`] per argument (the
/// argument copy into the callee's frame), before invoking the function
/// (whose body charges its own operations — the paper's Figure 3, where
/// `func` contributes its internal 40.4 cycles on top of `t_fc`).
///
/// ```
/// use scperf_core::{g_call, g_i32, G};
///
/// fn double(x: G<i32>) -> G<i32> {
///     x + x
/// }
/// let y = g_call!(double(g_i32(21)));
/// assert_eq!(y.get(), 42);
/// ```
#[macro_export]
macro_rules! g_call {
    ($f:ident ( $($arg:expr),* $(,)? )) => {{
        $crate::charge_call();
        $( $crate::charge_op($crate::Op::Assign); let _ = stringify!($arg); )*
        $f($($arg),*)
    }};
    ($($f:ident)::+ ( $($arg:expr),* $(,)? )) => {{
        $crate::charge_call();
        $( $crate::charge_op($crate::Op::Assign); let _ = stringify!($arg); )*
        $($f)::+($($arg),*)
    }};
}

#[cfg(test)]
mod tests {
    use crate::cost::{CostTable, Op};
    use crate::gval::G;
    use crate::resource::ResourceKind;
    use crate::site::MemoMode;
    use crate::tls::testutil::{with_test_ctx, with_test_ctx_full};

    #[test]
    fn g_if_charges_branch_then_condition() {
        let table = CostTable::from_pairs([(Op::Branch, 2.4), (Op::Cmp, 3.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            let a: G<i32> = G::raw(1);
            g_if!((a < 0) {} else {});
        });
        assert_eq!(ctx.acc, 5.4); // the paper's t_if + t_< step
    }

    #[test]
    fn g_while_charges_per_check() {
        let table = CostTable::from_pairs([(Op::Branch, 1.0), (Op::Cmp, 1.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            let mut i: G<i32> = G::raw(0);
            g_while!((i < 3) {
                i = G::raw(i.get() + 1);
            });
        });
        // 4 checks (3 passing + 1 failing), each Branch + Cmp.
        assert_eq!(ctx.acc, 8.0);
    }

    #[test]
    fn g_for_charges_loop_bookkeeping_per_iteration() {
        let table = CostTable::from_pairs([
            (Op::Branch, 2.0),
            (Op::Assign, 1.0),
            (Op::Add, 1.0),
            (Op::Cmp, 1.0),
        ]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            g_for!(_i in 0..5 => {});
        });
        // 5 iterations x (assign + add + cmp + branch) = 5 x 5.
        assert_eq!(ctx.acc, 25.0);
    }

    #[test]
    fn g_call_charges_overhead_args_and_body() {
        fn body(x: G<i32>, y: G<i32>) -> G<i32> {
            x + y // one Add
        }
        let table = CostTable::from_pairs([(Op::Call, 18.0), (Op::Add, 1.0), (Op::Assign, 2.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            let _ = g_call!(body(G::raw(1), G::raw(2)));
        });
        // call 18 + 2 args x 2 + body add 1.
        assert_eq!(ctx.acc, 23.0);
    }

    #[test]
    fn macros_work_without_context() {
        let mut n = 0;
        g_if!((true) { n += 1; });
        g_while!((n < 2) { n += 1; });
        g_for!(_i in 0..2 => { n += 1; });
        g_loop!(_i in 0..2 => { n += 1; });
        let m = g_site!({ n + 1 });
        assert_eq!(n, 6);
        assert_eq!(m, 7);
    }

    #[test]
    fn g_loop_charges_exactly_like_g_for() {
        let table = CostTable::from_pairs([
            (Op::Branch, 2.0),
            (Op::Assign, 1.0),
            (Op::Add, 1.0),
            (Op::Cmp, 1.0),
            (Op::Mul, 5.0),
        ]);
        let plain = with_test_ctx(ResourceKind::Sequential, table.clone(), false, || {
            g_for!(_i in 0..6 => {
                crate::charge_op(Op::Mul);
            });
        });
        for memo in [MemoMode::Off, MemoMode::Replay, MemoMode::Verify] {
            let looped = with_test_ctx_full(
                ResourceKind::Sequential,
                table.clone(),
                false,
                false,
                memo,
                || {
                    g_loop!(_i in 0..6 => {
                        crate::charge_op(Op::Mul);
                    });
                },
            );
            assert_eq!(plain.acc.to_bits(), looped.acc.to_bits(), "{memo:?}");
            assert_eq!(plain.counts, looped.counts, "{memo:?}");
        }
    }

    #[test]
    fn g_site_keyed_form_distinguishes_trip_counts() {
        let table = CostTable::from_pairs([
            (Op::Branch, 1.0),
            (Op::Assign, 1.0),
            (Op::Add, 1.0),
            (Op::Cmp, 1.0),
        ]);
        let run = |memo| {
            with_test_ctx_full(
                ResourceKind::Sequential,
                table.clone(),
                false,
                false,
                memo,
                || {
                    for trip in [2usize, 5, 2, 5, 5] {
                        g_site!((trip as u64) {
                            g_for!(_i in 0..trip => {});
                        });
                    }
                },
            )
        };
        let live = run(MemoMode::Off);
        let memo = run(MemoMode::Replay);
        assert_eq!(live.acc.to_bits(), memo.acc.to_bits());
        assert_eq!(live.counts, memo.counts);
        // (2+5+2+5+5) iterations x 4 bookkeeping ops.
        assert_eq!(live.acc, 19.0 * 4.0);
    }

    #[test]
    fn g_loop_body_break_and_continue_stay_safe() {
        let table = CostTable::from_pairs([(Op::Branch, 1.0), (Op::Mul, 3.0)]);
        let ctx = with_test_ctx_full(
            ResourceKind::Sequential,
            table,
            false,
            false,
            MemoMode::Replay,
            || {
                g_loop!(i in 0..10 => {
                    if i == 7 {
                        break;
                    }
                    if i % 2 == 0 {
                        continue;
                    }
                    crate::charge_op(Op::Mul);
                });
                // Charging must still be live after the early exits.
                crate::charge_op(Op::Mul);
            },
        );
        assert!(ctx.counts.get(Op::Mul) >= 1);
        assert!(ctx.counts.get(Op::Branch) >= 7);
    }
}
