//! Control-flow annotation macros.
//!
//! The paper annotates `if` statements and function calls through operator
//! overloading and parser-inserted marks. Rust cannot overload control
//! flow, so annotated code spells the marks with these macros; each charges
//! the corresponding [`crate::Op`] cost before executing the ordinary Rust
//! construct, leaving semantics untouched.

/// An annotated `if`: charges one [`crate::Op::Branch`], then evaluates the
/// condition (whose own comparisons charge their [`crate::Op::Cmp`] costs)
/// and runs the chosen arm.
///
/// ```
/// use scperf_core::{g_if, g_i32};
///
/// let a = g_i32(1);
/// let mut hit = false;
/// g_if!((a < 2) {
///     hit = true;
/// } else {
///     unreachable!();
/// });
/// assert!(hit);
/// ```
#[macro_export]
macro_rules! g_if {
    (($cond:expr) $then:block else $else_:block) => {{
        $crate::charge_branch();
        if $cond $then else $else_
    }};
    (($cond:expr) $then:block) => {{
        $crate::charge_branch();
        if $cond $then
    }};
}

/// An annotated `while` loop: charges one [`crate::Op::Branch`] per
/// condition evaluation, including the final failing one.
///
/// ```
/// use scperf_core::{g_while, g_i32};
///
/// let mut i = g_i32(0);
/// let mut n = 0;
/// g_while!((i < 3) {
///     i = i + 1;
///     n += 1;
/// });
/// assert_eq!(n, 3);
/// ```
#[macro_export]
macro_rules! g_while {
    (($cond:expr) $body:block) => {
        loop {
            $crate::charge_branch();
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let cond = $cond;
            if !cond {
                break;
            }
            $body
        }
    };
}

/// An annotated counted loop: charges the canonical `for`-statement
/// bookkeeping per iteration — the increment (`i = i + 1`:
/// [`crate::Op::Assign`] + [`crate::Op::Add`]), the bound test
/// ([`crate::Op::Cmp`]) and the branch ([`crate::Op::Branch`]) — exactly
/// what a compiled `for (i = 0; i < n; i = i + 1)` executes each time
/// around.
///
/// ```
/// use scperf_core::g_for;
///
/// let mut sum = 0;
/// g_for!(i in 0..4 => {
///     sum += i;
/// });
/// assert_eq!(sum, 6);
/// ```
#[macro_export]
macro_rules! g_for {
    ($i:ident in $range:expr => $body:block) => {
        for $i in $range {
            $crate::charge_op($crate::Op::Assign);
            $crate::charge_op($crate::Op::Add);
            $crate::charge_op($crate::Op::Cmp);
            $crate::charge_branch();
            $body
        }
    };
}

/// An annotated function call: charges one [`crate::Op::Call`] for the
/// call/return overhead plus one [`crate::Op::Assign`] per argument (the
/// argument copy into the callee's frame), before invoking the function
/// (whose body charges its own operations — the paper's Figure 3, where
/// `func` contributes its internal 40.4 cycles on top of `t_fc`).
///
/// ```
/// use scperf_core::{g_call, g_i32, G};
///
/// fn double(x: G<i32>) -> G<i32> {
///     x + x
/// }
/// let y = g_call!(double(g_i32(21)));
/// assert_eq!(y.get(), 42);
/// ```
#[macro_export]
macro_rules! g_call {
    ($f:ident ( $($arg:expr),* $(,)? )) => {{
        $crate::charge_call();
        $( $crate::charge_op($crate::Op::Assign); let _ = stringify!($arg); )*
        $f($($arg),*)
    }};
    ($($f:ident)::+ ( $($arg:expr),* $(,)? )) => {{
        $crate::charge_call();
        $( $crate::charge_op($crate::Op::Assign); let _ = stringify!($arg); )*
        $($f)::+($($arg),*)
    }};
}

#[cfg(test)]
mod tests {
    use crate::cost::{CostTable, Op};
    use crate::gval::G;
    use crate::resource::ResourceKind;
    use crate::tls::testutil::with_test_ctx;

    #[test]
    fn g_if_charges_branch_then_condition() {
        let table = CostTable::from_pairs([(Op::Branch, 2.4), (Op::Cmp, 3.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            let a: G<i32> = G::raw(1);
            g_if!((a < 0) {} else {});
        });
        assert_eq!(ctx.acc, 5.4); // the paper's t_if + t_< step
    }

    #[test]
    fn g_while_charges_per_check() {
        let table = CostTable::from_pairs([(Op::Branch, 1.0), (Op::Cmp, 1.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            let mut i: G<i32> = G::raw(0);
            g_while!((i < 3) {
                i = G::raw(i.get() + 1);
            });
        });
        // 4 checks (3 passing + 1 failing), each Branch + Cmp.
        assert_eq!(ctx.acc, 8.0);
    }

    #[test]
    fn g_for_charges_loop_bookkeeping_per_iteration() {
        let table = CostTable::from_pairs([
            (Op::Branch, 2.0),
            (Op::Assign, 1.0),
            (Op::Add, 1.0),
            (Op::Cmp, 1.0),
        ]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            g_for!(_i in 0..5 => {});
        });
        // 5 iterations x (assign + add + cmp + branch) = 5 x 5.
        assert_eq!(ctx.acc, 25.0);
    }

    #[test]
    fn g_call_charges_overhead_args_and_body() {
        fn body(x: G<i32>, y: G<i32>) -> G<i32> {
            x + y // one Add
        }
        let table = CostTable::from_pairs([(Op::Call, 18.0), (Op::Add, 1.0), (Op::Assign, 2.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            let _ = g_call!(body(G::raw(1), G::raw(2)));
        });
        // call 18 + 2 args x 2 + body add 1.
        assert_eq!(ctx.acc, 23.0);
    }

    #[test]
    fn macros_work_without_context() {
        let mut n = 0;
        g_if!((true) { n += 1; });
        g_while!((n < 2) { n += 1; });
        g_for!(_i in 0..2 => { n += 1; });
        assert_eq!(n, 4);
    }
}
