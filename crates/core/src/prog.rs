//! Segment cost programs: a compact bytecode compiled from recorded
//! charge streams, replayed by a tight VM against the flat TLS slots.
//!
//! PR 5's site memoization replays a marked region from a flat
//! `{Δacc, Δcounts}` delta. This module generalizes the record side to a
//! *structured* program — the first execution of a `(site, key)` region
//! compiles into a small instruction sequence ([`Instr`]) that captures
//! loops ([`Instr::Loop`]), nested memoized regions ([`Instr::Call`])
//! and per-path branch arms ([`Instr::Branch`], the wire-format arm
//! header) instead of an opaque delta. Programs are:
//!
//! * **replayable** — [`CompiledProg`] is the lowered hot form (total
//!   `Δacc` plus sparse per-op rows); the VM applies it to the fast
//!   slots in a handful of adds, bit-identical to live charging for
//!   integer-valued cost tables (every partial sum is an exact `f64`
//!   integer below 2^53);
//! * **serializable** — [`ProgramSet`] round-trips through a compact
//!   byte encoding ([`ProgramSet::to_bytes`]) validated by an FNV-1a
//!   fingerprint of the cost-table bits ([`table_fingerprint`]),
//!   mirroring `scperf_serve`'s `engine::shape_key`. A set recorded in
//!   one process warm-starts sites in another: on a local miss the
//!   store consults the frozen set by the site's *stable* identity (a
//!   hash of its `file:line:column` name) and compiles the program for
//!   the installed table;
//! * **rejectable** — a set whose fingerprint does not match the
//!   installed cost table is ignored (counted in `est.prog.rejects`)
//!   and every region simply charges live, so a stale cache can slow
//!   an estimate down but never corrupt it.
//!
//! The keying scheme is `(site, caller key, branch-outcome key)`: the
//! caller folds every value that changes the region's charge stream —
//! trip counts, data-dependent branch outcomes computed in plain
//! (uncharged) Rust — into the `u64` key, so data-dependent control
//! flow compiles into one program per executed path.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::cost::{CostTable, Op, ALL_OPS, OP_COUNT};

/// Largest magnitude at which every integer is exactly representable as
/// an `f64` (2^53): the bound under which compiled `Δacc` recomputation
/// is bit-identical to live accumulation.
const MAX_EXACT: f64 = 9_007_199_254_740_992.0;

/// Maximum [`Instr::Call`] nesting depth the compiler follows before
/// declaring the program malformed (defends against reference cycles in
/// a corrupted serialized set). Deep enough for recursive workloads
/// that key each depth separately (e.g. `fib(n)` calling `fib(n-1)`).
const MAX_CALL_DEPTH: u32 = 64;

// ====================================================== the bytecode ==

/// One cost-program instruction.
///
/// The structured form a site records; see the module docs for the
/// lifecycle. `Loop` and `Branch` carry *lengths* — the following
/// `body`/`len` instructions form the nested block — so a program is a
/// flat `Vec<Instr>` with no allocation per nesting level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Charge `count` executions of `op`: `acc += count · cost[op]`,
    /// `counts[op] += count`.
    ChargeRow {
        /// The elementary operation charged.
        op: Op,
        /// How many times the region charged it.
        count: u64,
    },
    /// Raise the parallel-resource ready frontier to `f64::from_bits(bits)`.
    /// Reserved: sequential replay (the only mode that memoizes today)
    /// never records it, and the compiler rejects programs containing it.
    MaxReady {
        /// The frontier value, by bit pattern.
        bits: u64,
    },
    /// Execute the next `body` instructions `n` times (a uniform loop
    /// collapsed by the recorder: `g_loop!` iterations whose charge
    /// streams were identical).
    Loop {
        /// Trip count.
        n: u64,
        /// Number of following instructions forming the loop body.
        body: u32,
    },
    /// Execute the program of another `(site, key)` — a nested memoized
    /// region encountered while recording. `site` is the callee's stable
    /// identity hash.
    Call {
        /// Stable site-identity hash of the callee.
        site: u64,
        /// The callee's full key.
        key: u64,
    },
    /// Arm header in the serialized per-site grouping: the next `len`
    /// instructions are the program of one `key` (branch-outcome path)
    /// of the site. Never appears inside a program body.
    Branch {
        /// The arm's full `(caller, branch-outcome)` key.
        key: u64,
        /// Number of following instructions forming the arm.
        len: u32,
    },
}

/// A structured cost program: the recorded instruction sequence of one
/// `(site, key)` region.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostProgram {
    instrs: Vec<Instr>,
}

impl CostProgram {
    /// Wraps an instruction sequence.
    pub fn new(instrs: Vec<Instr>) -> CostProgram {
        CostProgram { instrs }
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program charges nothing.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

// ================================================== FNV-1a hashing ==

/// 64-bit FNV-1a over a byte stream.
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 64-bit FNV-1a folding `u64` words byte-by-byte.
pub(crate) fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Word-folding FNV-style [`Hasher`] used by the program maps on the
/// charging path — `(u32, u64)` site keys hash in two multiplies instead
/// of SipHash's full permutation.
#[derive(Clone)]
pub(crate) struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so dense low-entropy keys spread over the
        // table's low bits (HashMap masks with capacity - 1).
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x0000_0100_0000_01b3);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for the word-folding FNV hasher.
pub(crate) type BuildFnv = BuildHasherDefault<Fnv64>;

/// Stable identity of a lexical site: FNV-1a of its
/// `file:line:column` name. Zero for anonymous sites (which therefore
/// never serialize).
pub(crate) fn stable_site_hash(name: &str) -> u64 {
    if name.is_empty() {
        0
    } else {
        fnv1a_bytes(name.as_bytes()).max(1)
    }
}

/// Fingerprints the cost-table bits a program set was recorded under
/// (programs store op *counts*, so this is what `Δacc` recomputation
/// depends on). Mismatched fingerprints reject replay — the set is
/// ignored and regions charge live.
pub fn table_fingerprint(table: &CostTable) -> u64 {
    fingerprint_costs(table.as_dense())
}

/// [`table_fingerprint`] over an already-dense cost snapshot.
pub(crate) fn fingerprint_costs(costs: &[f64; OP_COUNT]) -> u64 {
    let head = [WIRE_VERSION as u64, OP_COUNT as u64];
    fnv1a_words(head.into_iter().chain(costs.iter().map(|c| c.to_bits())))
}

// ============================================== the compiled hot form ==

/// A program lowered for the replay VM: the precomputed total `Δacc`
/// for one cost table plus the sparse per-op count rows. Applying it is
/// one `f64` add plus one integer add per distinct op charged.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledProg {
    /// Total cycles the program charges under the compiled-for table.
    pub(crate) d_acc: f64,
    /// Sparse `(dense op index, count)` rows, ascending by op.
    pub(crate) rows: Box<[(u8, u64)]>,
}

impl CompiledProg {
    /// Lowers a recorded flat delta (the live-measured `Δacc` keeps
    /// replay bit-identical to the recording run by construction).
    pub(crate) fn from_flat(d_acc: f64, d_counts: &[u64; OP_COUNT]) -> CompiledProg {
        let rows: Vec<(u8, u64)> = d_counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u8, n))
            .collect();
        CompiledProg {
            d_acc,
            rows: rows.into_boxed_slice(),
        }
    }

    /// Expands the sparse rows back to a dense count array.
    pub(crate) fn dense_counts(&self) -> [u64; OP_COUNT] {
        let mut out = [0u64; OP_COUNT];
        for &(op, n) in self.rows.iter() {
            out[op as usize] = n;
        }
        out
    }

    /// Whether recomputing `Δacc` from the rows under `costs`
    /// reproduces the stored value bit-for-bit — the exactness gate: a
    /// program that fails it (fractional leak, > 2^53 overflow) must
    /// not be stored, the region stays live.
    pub(crate) fn recomputes_exactly(&self, costs: &[f64; OP_COUNT]) -> bool {
        match sum_rows(&self.rows, costs) {
            Some(sum) => sum.to_bits() == self.d_acc.to_bits(),
            None => false,
        }
    }
}

/// `Σ count · cost` over sparse rows; `None` when any partial leaves
/// the exact-integer range.
fn sum_rows(rows: &[(u8, u64)], costs: &[f64; OP_COUNT]) -> Option<f64> {
    let mut acc = 0.0f64;
    for &(op, n) in rows {
        if n as f64 > MAX_EXACT {
            return None;
        }
        // NaN-rejecting range check: `abs() <= MAX_EXACT` is false for
        // NaN, so a poisoned cost propagates to `None`, not into `acc`.
        let add = costs[op as usize] * n as f64;
        if add.is_nan() || add.abs() > MAX_EXACT {
            return None;
        }
        acc += add;
        if acc.is_nan() || acc.abs() > MAX_EXACT {
            return None;
        }
    }
    Some(acc)
}

/// Compiles a structured program for one cost table, resolving
/// [`Instr::Call`] references against `set`. `None` when the program is
/// malformed, references a missing callee, contains reserved
/// instructions, or leaves the exact-`f64` range — the caller falls
/// back to live charging.
pub(crate) fn compile(
    prog: &CostProgram,
    set: Option<&ProgramSet>,
    costs: &[f64; OP_COUNT],
) -> Option<CompiledProg> {
    let mut counts = [0u64; OP_COUNT];
    accumulate(prog.instrs(), set, 1, &mut counts, 0)?;
    let compiled = CompiledProg::from_flat(0.0, &counts);
    let d_acc = sum_rows(&compiled.rows, costs)?;
    Some(CompiledProg {
        d_acc,
        rows: compiled.rows,
    })
}

fn accumulate(
    instrs: &[Instr],
    set: Option<&ProgramSet>,
    mult: u64,
    counts: &mut [u64; OP_COUNT],
    depth: u32,
) -> Option<()> {
    let mut i = 0;
    while i < instrs.len() {
        match instrs[i] {
            Instr::ChargeRow { op, count } => {
                let idx = op.index();
                counts[idx] = counts[idx].checked_add(mult.checked_mul(count)?)?;
            }
            Instr::MaxReady { .. } => return None,
            Instr::Loop { n, body } => {
                let end = i.checked_add(1 + body as usize)?;
                if end > instrs.len() {
                    return None;
                }
                accumulate(
                    &instrs[i + 1..end],
                    set,
                    mult.checked_mul(n)?,
                    counts,
                    depth,
                )?;
                i = end;
                continue;
            }
            Instr::Call { site, key } => {
                if depth >= MAX_CALL_DEPTH {
                    return None;
                }
                let callee = set?.get(site, key)?;
                accumulate(callee.instrs(), set, mult, counts, depth + 1)?;
            }
            Instr::Branch { .. } => return None,
        }
        i += 1;
    }
    Some(())
}

// ============================================ recording the structure ==

/// A nested-region marker logged while an enclosing site records: the
/// callee's identity plus the count snapshot bracketing its applied
/// delta, so the builder can cut the enclosing flat delta into
/// `ChargeRow` gaps around a [`Instr::Call`].
#[derive(Debug, Clone)]
pub(crate) struct RecEvent {
    /// Callee stable site hash (never zero — anonymous callees are
    /// inlined into the gap instead of logged).
    pub(crate) site: u64,
    /// Callee full key.
    pub(crate) key: u64,
    /// Dense fast-slot counts just before the callee's delta applied.
    pub(crate) counts_before: [u64; OP_COUNT],
    /// The callee's dense count delta.
    pub(crate) d_counts: [u64; OP_COUNT],
}

/// Uniform-loop shape observed by `g_loop!` iteration marking: total
/// trips and the dense count delta of the first iteration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LoopShape {
    /// Total iterations executed.
    pub(crate) trips: u64,
    /// First iteration's count delta.
    pub(crate) body: [u64; OP_COUNT],
}

fn push_rows(out: &mut Vec<Instr>, counts: &[u64; OP_COUNT]) {
    for (i, &n) in counts.iter().enumerate() {
        if n > 0 {
            out.push(Instr::ChargeRow {
                op: ALL_OPS[i],
                count: n,
            });
        }
    }
}

fn sub_counts(a: &[u64; OP_COUNT], b: &[u64; OP_COUNT]) -> Option<[u64; OP_COUNT]> {
    let mut out = [0u64; OP_COUNT];
    for i in 0..OP_COUNT {
        out[i] = a[i].checked_sub(b[i])?;
    }
    Some(out)
}

fn add_counts(a: &[u64; OP_COUNT], b: &[u64; OP_COUNT]) -> Option<[u64; OP_COUNT]> {
    let mut out = [0u64; OP_COUNT];
    for i in 0..OP_COUNT {
        out[i] = a[i].checked_add(b[i])?;
    }
    Some(out)
}

/// Builds the structured program for a recorded region from its flat
/// count delta, the entry snapshot, the nested-region events logged
/// inside it and (for `g_loop!` sites) the observed loop shape. Falls
/// back to plain `ChargeRow`s whenever the richer structure does not
/// reproduce the flat delta exactly.
pub(crate) fn build_program(
    d_counts: &[u64; OP_COUNT],
    counts0: &[u64; OP_COUNT],
    events: &[RecEvent],
    loop_shape: Option<LoopShape>,
) -> CostProgram {
    if events.is_empty() {
        // Uniform-loop collapse: when every iteration charged exactly
        // the first iteration's rows, emit Loop { n, body }.
        if let Some(shape) = loop_shape {
            if shape.trips >= 2 && uniform(d_counts, &shape) {
                let mut instrs = Vec::new();
                let body_at = instrs.len();
                push_rows(&mut instrs, &shape.body);
                let body = (instrs.len() - body_at) as u32;
                instrs.insert(
                    body_at,
                    Instr::Loop {
                        n: shape.trips,
                        body,
                    },
                );
                return CostProgram::new(instrs);
            }
        }
        let mut instrs = Vec::new();
        push_rows(&mut instrs, d_counts);
        return CostProgram::new(instrs);
    }
    // Cut the flat delta into gaps around the nested calls.
    let mut instrs = Vec::new();
    let mut cursor = *counts0;
    let mut ok = true;
    for ev in events {
        match sub_counts(&ev.counts_before, &cursor) {
            Some(gap) => {
                push_rows(&mut instrs, &gap);
                instrs.push(Instr::Call {
                    site: ev.site,
                    key: ev.key,
                });
                cursor = match add_counts(&ev.counts_before, &ev.d_counts) {
                    Some(c) => c,
                    None => {
                        ok = false;
                        break;
                    }
                };
            }
            None => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        if let (Some(end), Some(total)) = (add_counts(counts0, d_counts), Some(cursor)) {
            match sub_counts(&end, &total) {
                Some(tail) => push_rows(&mut instrs, &tail),
                None => ok = false,
            }
        } else {
            ok = false;
        }
    }
    if !ok {
        let mut flat = Vec::new();
        push_rows(&mut flat, d_counts);
        return CostProgram::new(flat);
    }
    CostProgram::new(instrs)
}

fn uniform(d_counts: &[u64; OP_COUNT], shape: &LoopShape) -> bool {
    (0..OP_COUNT).all(|i| {
        shape.body[i]
            .checked_mul(shape.trips)
            .is_some_and(|total| total == d_counts[i])
    })
}

// ======================================================= ProgramSet ==

/// A serializable set of cost programs keyed by
/// `(stable site hash, key)`, fingerprinted by the cost table they were
/// recorded under. The unit of cross-process / cross-worker sharing:
/// `scperf-serve` publishes one set for all workers, `scperf-dse` can
/// write it to disk and warm-start a later sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramSet {
    table_fp: u64,
    entries: HashMap<(u64, u64), CostProgram, BuildFnv>,
}

/// Why a serialized program set failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgDecodeError {
    /// The buffer does not start with the `SCPG` magic.
    BadMagic,
    /// Unknown wire-format version.
    BadVersion(u8),
    /// The buffer ended mid-record.
    Truncated,
    /// Unknown instruction tag.
    BadInstr(u8),
    /// Structurally invalid record (op index out of range, arm
    /// overrun, …).
    BadStructure,
}

impl fmt::Display for ProgDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgDecodeError::BadMagic => write!(f, "not a program set (bad magic)"),
            ProgDecodeError::BadVersion(v) => write!(f, "unsupported program-set version {v}"),
            ProgDecodeError::Truncated => write!(f, "truncated program set"),
            ProgDecodeError::BadInstr(t) => write!(f, "unknown instruction tag {t}"),
            ProgDecodeError::BadStructure => write!(f, "malformed program structure"),
        }
    }
}

impl std::error::Error for ProgDecodeError {}

const WIRE_MAGIC: [u8; 4] = *b"SCPG";
const WIRE_VERSION: u8 = 1;

const TAG_CHARGE_ROW: u8 = 1;
const TAG_MAX_READY: u8 = 2;
const TAG_LOOP: u8 = 3;
const TAG_CALL: u8 = 4;
const TAG_BRANCH: u8 = 5;

impl ProgramSet {
    /// Creates an empty set for programs recorded under the table with
    /// the given [`table_fingerprint`].
    pub fn new(table_fp: u64) -> ProgramSet {
        ProgramSet {
            table_fp,
            entries: HashMap::default(),
        }
    }

    /// The fingerprint of the cost table the programs were recorded
    /// under.
    pub fn table_fp(&self) -> u64 {
        self.table_fp
    }

    /// Number of stored programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set holds no programs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The program of `(site, key)`, if present.
    pub fn get(&self, site: u64, key: u64) -> Option<&CostProgram> {
        self.entries.get(&(site, key))
    }

    /// Stores a program (first write wins — racing recorders recorded
    /// the same deterministic program).
    pub fn insert(&mut self, site: u64, key: u64, prog: CostProgram) {
        self.entries.entry((site, key)).or_insert(prog);
    }

    /// Merges `other`'s programs in (first write wins). No-op when the
    /// fingerprints disagree — programs from a different table must not
    /// mix. Returns how many programs were added.
    pub fn merge(&mut self, other: &ProgramSet) -> usize {
        if other.table_fp != self.table_fp {
            return 0;
        }
        let before = self.entries.len();
        for (k, v) in &other.entries {
            self.entries.entry(*k).or_insert_with(|| v.clone());
        }
        self.entries.len() - before
    }

    /// Iterates `(site, key, program)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, &CostProgram)> {
        self.entries.iter().map(|(&(s, k), p)| (s, k, p))
    }

    /// Encodes the set into the compact byte format:
    /// `SCPG | version | table_fp | site count`, then per site its
    /// stable hash and arm count, then per arm a [`Instr::Branch`]
    /// header (`key`, instruction count) followed by the arm's
    /// instructions. Output is deterministic (sites and keys sorted).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut by_site: Vec<(u64, Vec<(u64, &CostProgram)>)> = Vec::new();
        {
            let mut sites: Vec<u64> = self.entries.keys().map(|&(s, _)| s).collect();
            sites.sort_unstable();
            sites.dedup();
            for site in sites {
                let mut arms: Vec<(u64, &CostProgram)> = self
                    .entries
                    .iter()
                    .filter(|(&(s, _), _)| s == site)
                    .map(|(&(_, k), p)| (k, p))
                    .collect();
                arms.sort_unstable_by_key(|&(k, _)| k);
                by_site.push((site, arms));
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&self.table_fp.to_le_bytes());
        out.extend_from_slice(&(by_site.len() as u32).to_le_bytes());
        for (site, arms) in by_site {
            out.extend_from_slice(&site.to_le_bytes());
            out.extend_from_slice(&(arms.len() as u32).to_le_bytes());
            for (key, prog) in arms {
                encode_instr(
                    &mut out,
                    Instr::Branch {
                        key,
                        len: prog.len() as u32,
                    },
                );
                for &instr in prog.instrs() {
                    encode_instr(&mut out, instr);
                }
            }
        }
        out
    }

    /// Decodes a set written by [`ProgramSet::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ProgramSet, ProgDecodeError> {
        let mut r = Reader { buf: bytes, at: 0 };
        if r.take(4)? != WIRE_MAGIC {
            return Err(ProgDecodeError::BadMagic);
        }
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(ProgDecodeError::BadVersion(version));
        }
        let table_fp = r.u64()?;
        let mut set = ProgramSet::new(table_fp);
        let nsites = r.u32()?;
        for _ in 0..nsites {
            let site = r.u64()?;
            let narms = r.u32()?;
            for _ in 0..narms {
                let (key, len) = match decode_instr(&mut r)? {
                    Instr::Branch { key, len } => (key, len),
                    _ => return Err(ProgDecodeError::BadStructure),
                };
                let mut instrs = Vec::with_capacity(len.min(1024) as usize);
                for _ in 0..len {
                    let instr = decode_instr(&mut r)?;
                    if matches!(instr, Instr::Branch { .. }) {
                        return Err(ProgDecodeError::BadStructure);
                    }
                    instrs.push(instr);
                }
                set.insert(site, key, CostProgram::new(instrs));
            }
        }
        Ok(set)
    }
}

fn encode_instr(out: &mut Vec<u8>, instr: Instr) {
    match instr {
        Instr::ChargeRow { op, count } => {
            out.push(TAG_CHARGE_ROW);
            out.push(op.index() as u8);
            out.extend_from_slice(&count.to_le_bytes());
        }
        Instr::MaxReady { bits } => {
            out.push(TAG_MAX_READY);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        Instr::Loop { n, body } => {
            out.push(TAG_LOOP);
            out.extend_from_slice(&n.to_le_bytes());
            out.extend_from_slice(&body.to_le_bytes());
        }
        Instr::Call { site, key } => {
            out.push(TAG_CALL);
            out.extend_from_slice(&site.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
        }
        Instr::Branch { key, len } => {
            out.push(TAG_BRANCH);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProgDecodeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProgDecodeError::Truncated)?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProgDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProgDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProgDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_instr(r: &mut Reader<'_>) -> Result<Instr, ProgDecodeError> {
    let tag = r.u8()?;
    match tag {
        TAG_CHARGE_ROW => {
            let op_idx = r.u8()? as usize;
            let count = r.u64()?;
            let op = *ALL_OPS.get(op_idx).ok_or(ProgDecodeError::BadStructure)?;
            Ok(Instr::ChargeRow { op, count })
        }
        TAG_MAX_READY => Ok(Instr::MaxReady { bits: r.u64()? }),
        TAG_LOOP => {
            let n = r.u64()?;
            let body = r.u32()?;
            Ok(Instr::Loop { n, body })
        }
        TAG_CALL => {
            let site = r.u64()?;
            let key = r.u64()?;
            Ok(Instr::Call { site, key })
        }
        TAG_BRANCH => {
            let key = r.u64()?;
            let len = r.u32()?;
            Ok(Instr::Branch { key, len })
        }
        other => Err(ProgDecodeError::BadInstr(other)),
    }
}

// ======================================================== ProgStore ==

/// Per-site slice of the program index: the keys seen at one site,
/// kept sorted, paired with their slots in `compiled`. Lookup is a
/// binary search over a contiguous `u64` array — cheaper than hashing
/// for the handful of keys most sites carry, and still logarithmic for
/// high-cardinality sites (data-dependent keys such as the vocoder's
/// lag-clamp can compile hundreds of variants).
#[derive(Default)]
struct SiteIndex {
    keys: Vec<u64>,
    idxs: Vec<u32>,
}

/// Per-process program store: the fast `(numeric site id, key) → index`
/// map consulted on every region entry, the compiled hot forms, the
/// structured sources of programs recorded *by this process* (for
/// harvest), and the optional frozen warm set consulted on local
/// misses.
///
/// The hot map is a dense `Vec` indexed by the numeric site id (site
/// ids come from a global counter and are assigned lazily, so they stay
/// small) — the replay hit path is one bounds check plus a short key
/// scan, no hashing.
pub(crate) struct ProgStore {
    sites: Vec<SiteIndex>,
    compiled: Vec<CompiledProg>,
    fresh: Vec<(u64, u64, CostProgram)>,
    pub(crate) warm: Option<Arc<ProgramSet>>,
    /// Local misses satisfied by compiling a warm-set program.
    pub(crate) warm_hits: u64,
    /// Warm sets ignored for a fingerprint mismatch (counted once per
    /// install).
    pub(crate) rejects: u64,
}

impl ProgStore {
    /// Empty store with no warm set.
    pub(crate) fn new() -> ProgStore {
        ProgStore::with_warm(None)
    }

    /// Empty store that consults `warm` on local misses.
    pub(crate) fn with_warm(warm: Option<Arc<ProgramSet>>) -> ProgStore {
        ProgStore {
            sites: Vec::new(),
            compiled: Vec::new(),
            fresh: Vec::new(),
            warm,
            warm_hits: 0,
            rejects: 0,
        }
    }

    /// Index of the compiled program for `(site, key)`, if present.
    #[inline]
    pub(crate) fn lookup(&self, site: u32, key: u64) -> Option<u32> {
        let s = self.sites.get(site as usize)?;
        s.keys.binary_search(&key).ok().map(|i| s.idxs[i])
    }

    /// Records `(site, key) → idx` in the dense index, keeping the
    /// per-site key array sorted. Inserts are rare (one per compiled
    /// variant); lookups dominate.
    fn index_insert(&mut self, site: u32, key: u64, idx: u32) {
        if self.sites.len() <= site as usize {
            self.sites
                .resize_with(site as usize + 1, SiteIndex::default);
        }
        let s = &mut self.sites[site as usize];
        let at = s.keys.partition_point(|&k| k < key);
        s.keys.insert(at, key);
        s.idxs.insert(at, idx);
    }

    /// The compiled program at `idx`.
    #[inline]
    pub(crate) fn compiled(&self, idx: u32) -> &CompiledProg {
        &self.compiled[idx as usize]
    }

    /// Satisfies a local miss from the warm set: compiles the program
    /// for this process's table and installs it locally. `None` when no
    /// warm set is attached, the site is anonymous, or the program does
    /// not compile (the region then records afresh).
    pub(crate) fn warm_fetch(
        &mut self,
        site: u32,
        stable: u64,
        key: u64,
        costs: &[f64; OP_COUNT],
    ) -> Option<u32> {
        if stable == 0 {
            return None;
        }
        let warm = self.warm.as_ref()?;
        let prog = warm.get(stable, key)?;
        let compiled = compile(prog, Some(warm), costs)?;
        let idx = self.compiled.len() as u32;
        self.compiled.push(compiled);
        self.index_insert(site, key, idx);
        self.warm_hits += 1;
        Some(idx)
    }

    /// Installs a freshly recorded program. Named sites are queued for
    /// harvest into the session's shared set.
    pub(crate) fn insert_recorded(
        &mut self,
        site: u32,
        stable: u64,
        key: u64,
        prog: CostProgram,
        compiled: CompiledProg,
    ) {
        let idx = self.compiled.len() as u32;
        self.compiled.push(compiled);
        self.index_insert(site, key, idx);
        if stable != 0 {
            self.fresh.push((stable, key, prog));
        }
    }

    /// Number of locally installed programs.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.compiled.len()
    }

    /// Whether no program is installed.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }

    /// Drains the programs recorded by this process.
    pub(crate) fn take_fresh(&mut self) -> Vec<(u64, u64, CostProgram)> {
        std::mem::take(&mut self.fresh)
    }
}

impl Default for ProgStore {
    fn default() -> ProgStore {
        ProgStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Op;

    fn table() -> CostTable {
        CostTable::from_pairs([(Op::Add, 2.0), (Op::Mul, 5.0), (Op::Branch, 1.0)])
    }

    #[test]
    fn compile_charges_rows_and_loops() {
        let prog = CostProgram::new(vec![
            Instr::ChargeRow {
                op: Op::Add,
                count: 3,
            },
            Instr::Loop { n: 4, body: 2 },
            Instr::ChargeRow {
                op: Op::Mul,
                count: 2,
            },
            Instr::ChargeRow {
                op: Op::Branch,
                count: 1,
            },
            Instr::ChargeRow {
                op: Op::Add,
                count: 1,
            },
        ]);
        let c = compile(&prog, None, table().as_dense()).expect("compiles");
        let dense = c.dense_counts();
        assert_eq!(dense[Op::Add.index()], 4);
        assert_eq!(dense[Op::Mul.index()], 8);
        assert_eq!(dense[Op::Branch.index()], 4);
        assert_eq!(c.d_acc, 4.0 * 2.0 + 8.0 * 5.0 + 4.0 * 1.0);
    }

    #[test]
    fn compile_resolves_calls_and_rejects_cycles() {
        let mut set = ProgramSet::new(7);
        set.insert(
            100,
            0,
            CostProgram::new(vec![Instr::ChargeRow {
                op: Op::Add,
                count: 2,
            }]),
        );
        let caller = CostProgram::new(vec![Instr::Call { site: 100, key: 0 }]);
        let c = compile(&caller, Some(&set), table().as_dense()).expect("resolves");
        assert_eq!(c.dense_counts()[Op::Add.index()], 2);

        let mut cyclic = ProgramSet::new(7);
        cyclic.insert(
            1,
            0,
            CostProgram::new(vec![Instr::Call { site: 1, key: 0 }]),
        );
        let looped = CostProgram::new(vec![Instr::Call { site: 1, key: 0 }]);
        assert!(compile(&looped, Some(&cyclic), table().as_dense()).is_none());
    }

    #[test]
    fn compile_rejects_reserved_and_missing() {
        let max_ready = CostProgram::new(vec![Instr::MaxReady { bits: 0 }]);
        assert!(compile(&max_ready, None, table().as_dense()).is_none());
        let missing = CostProgram::new(vec![Instr::Call { site: 9, key: 9 }]);
        assert!(compile(&missing, None, table().as_dense()).is_none());
        let branch = CostProgram::new(vec![Instr::Branch { key: 0, len: 0 }]);
        assert!(compile(&branch, None, table().as_dense()).is_none());
    }

    #[test]
    fn set_round_trips_through_bytes() {
        let mut set = ProgramSet::new(table_fingerprint(&table()));
        set.insert(
            11,
            0,
            CostProgram::new(vec![
                Instr::Loop { n: 6, body: 1 },
                Instr::ChargeRow {
                    op: Op::Mul,
                    count: 1,
                },
            ]),
        );
        set.insert(
            11,
            3,
            CostProgram::new(vec![Instr::Call { site: 12, key: 0 }]),
        );
        set.insert(
            12,
            0,
            CostProgram::new(vec![Instr::ChargeRow {
                op: Op::Add,
                count: 4,
            }]),
        );
        let bytes = set.to_bytes();
        let back = ProgramSet::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, set);
        // Deterministic encoding.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            ProgramSet::from_bytes(b"nope"),
            Err(ProgDecodeError::BadMagic)
        );
        let mut bytes = ProgramSet::new(1).to_bytes();
        bytes[4] = 99;
        assert_eq!(
            ProgramSet::from_bytes(&bytes),
            Err(ProgDecodeError::BadVersion(99))
        );
        let good = {
            let mut s = ProgramSet::new(1);
            s.insert(
                1,
                0,
                CostProgram::new(vec![Instr::ChargeRow {
                    op: Op::Add,
                    count: 1,
                }]),
            );
            s.to_bytes()
        };
        assert_eq!(
            ProgramSet::from_bytes(&good[..good.len() - 1]),
            Err(ProgDecodeError::Truncated)
        );
    }

    #[test]
    fn merge_respects_fingerprints() {
        let mut a = ProgramSet::new(1);
        let mut b = ProgramSet::new(1);
        let mut c = ProgramSet::new(2);
        b.insert(5, 0, CostProgram::default());
        c.insert(6, 0, CostProgram::default());
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.merge(&c), 0, "mismatched fingerprint must not merge");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn build_program_collapses_uniform_loops() {
        let mut d = [0u64; OP_COUNT];
        d[Op::Add.index()] = 12;
        d[Op::Branch.index()] = 6;
        let mut body = [0u64; OP_COUNT];
        body[Op::Add.index()] = 2;
        body[Op::Branch.index()] = 1;
        let prog = build_program(
            &d,
            &[0u64; OP_COUNT],
            &[],
            Some(LoopShape { trips: 6, body }),
        );
        assert!(matches!(prog.instrs()[0], Instr::Loop { n: 6, .. }));
        let c = compile(&prog, None, table().as_dense()).expect("compiles");
        assert_eq!(c.dense_counts(), d);
    }

    #[test]
    fn build_program_falls_back_flat_on_ragged_loops() {
        let mut d = [0u64; OP_COUNT];
        d[Op::Add.index()] = 11; // not 6 x 2: last iteration broke early
        let mut body = [0u64; OP_COUNT];
        body[Op::Add.index()] = 2;
        let prog = build_program(
            &d,
            &[0u64; OP_COUNT],
            &[],
            Some(LoopShape { trips: 6, body }),
        );
        assert!(prog
            .instrs()
            .iter()
            .all(|i| matches!(i, Instr::ChargeRow { .. })));
        let c = compile(&prog, None, table().as_dense()).expect("compiles");
        assert_eq!(c.dense_counts(), d);
    }

    #[test]
    fn build_program_cuts_gaps_around_calls() {
        let mut counts0 = [5u64; OP_COUNT];
        counts0[Op::Mul.index()] = 0;
        let mut before = counts0;
        before[Op::Add.index()] += 3; // gap: 3 Adds before the call
        let mut callee = [0u64; OP_COUNT];
        callee[Op::Mul.index()] = 7;
        let ev = RecEvent {
            site: 42,
            key: 9,
            counts_before: before,
            d_counts: callee,
        };
        // total delta: 3 Adds + callee's 7 Muls + 2 trailing Branches.
        let mut d = [0u64; OP_COUNT];
        d[Op::Add.index()] = 3;
        d[Op::Mul.index()] = 7;
        d[Op::Branch.index()] = 2;
        let prog = build_program(&d, &counts0, &[ev], None);
        assert!(prog
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Call { site: 42, key: 9 })));
        // Resolving the call against a set reproduces the flat delta.
        let mut set = ProgramSet::new(1);
        set.insert(
            42,
            9,
            CostProgram::new(vec![Instr::ChargeRow {
                op: Op::Mul,
                count: 7,
            }]),
        );
        let c = compile(&prog, Some(&set), table().as_dense()).expect("compiles");
        assert_eq!(c.dense_counts(), d);
    }

    #[test]
    fn exactness_gate_rejects_fractional_and_huge() {
        let mut d = [0u64; OP_COUNT];
        d[Op::Add.index()] = 2;
        let frac = CompiledProg::from_flat(3.0, &d);
        let mut costs = [0.0; OP_COUNT];
        costs[Op::Add.index()] = 1.5;
        assert!(frac.recomputes_exactly(&costs), "1.5 * 2 = 3 is exact");
        let wrong = CompiledProg::from_flat(4.0, &d);
        assert!(!wrong.recomputes_exactly(&costs));
        let mut huge = [0u64; OP_COUNT];
        huge[Op::Add.index()] = 1 << 60;
        let over = CompiledProg::from_flat(0.0, &huge);
        assert!(!over.recomputes_exactly(&costs));
    }

    #[test]
    fn stable_hash_is_zero_only_for_anonymous() {
        assert_eq!(stable_site_hash(""), 0);
        assert_ne!(stable_site_hash("a.rs:1:1"), 0);
        assert_ne!(stable_site_hash("a.rs:1:1"), stable_site_hash("a.rs:1:2"));
    }

    #[test]
    fn table_fingerprint_tracks_cost_bits() {
        let a = table_fingerprint(&table());
        assert_eq!(a, table_fingerprint(&table()));
        assert_ne!(
            a,
            table_fingerprint(&CostTable::from_pairs([(Op::Add, 3.0)]))
        );
    }
}
