//! Capture points: user-inserted timing probes (§4).
//!
//! "The user can insert capture points anywhere inside the code and a list
//! of events corresponding to the concrete times when the capture points
//! were executed is generated. The format of these lists is prepared for
//! post-processing using mathematical tools (i.e. Matlab). Capture points
//! can be conditional to a certain assertion. It is also possible to
//! associate values of internal signals of the system to these time
//! values."

use std::fmt::Write as _;
use std::sync::Arc;

use scperf_kernel::{ProcCtx, Time};

use crate::estimator::EstimatorShared;

/// One captured event: when it happened and the associated value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureEvent {
    /// Simulation time of the capture.
    pub at: Time,
    /// Associated value (e.g. an internal signal), if any.
    pub value: Option<f64>,
}

/// The recorded event list of one capture point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CaptureList {
    /// The capture point's name.
    pub name: String,
    /// Captured events, in capture order (time-ordered in strict-timed
    /// simulations).
    pub events: Vec<CaptureEvent>,
}

impl CaptureList {
    /// Inter-event times: `events[i+1].at − events[i].at`. Useful for rate
    /// analysis / average inter-execution times (§1 of the paper).
    pub fn intervals(&self) -> Vec<Time> {
        self.events
            .windows(2)
            .map(|w| w[1].at.saturating_sub(w[0].at))
            .collect()
    }

    /// Mean inter-event interval, or `None` with fewer than two events.
    pub fn mean_interval(&self) -> Option<Time> {
        let iv = self.intervals();
        if iv.is_empty() {
            return None;
        }
        let total: u64 = iv.iter().map(|t| t.as_ps()).sum();
        Some(Time::ps(total / iv.len() as u64))
    }

    /// Renders the list as CSV (`time_ns,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,value\n");
        for e in &self.events {
            match e.value {
                Some(v) => {
                    let _ = writeln!(out, "{},{}", e.at.as_ns_f64(), v);
                }
                None => {
                    let _ = writeln!(out, "{},", e.at.as_ns_f64());
                }
            }
        }
        out
    }

    /// Renders the list as a Matlab/Octave script defining `<name>_t`
    /// (times in ns) and `<name>_v` (values; NaN where no value was
    /// attached) — the post-processing format §4 mentions.
    pub fn to_matlab(&self) -> String {
        let ident: String = self
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let mut out = String::new();
        let _ = write!(out, "{ident}_t = [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", e.at.as_ns_f64());
        }
        out.push_str("];\n");
        let _ = write!(out, "{ident}_v = [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match e.value {
                Some(v) => {
                    let _ = write!(out, "{v}");
                }
                None => out.push_str("NaN"),
            }
        }
        out.push_str("];\n");
        out
    }
}

/// A handle to one capture point. Create with
/// [`crate::PerfModel::capture_point`]; cheap to clone into process bodies.
#[derive(Clone)]
pub struct CapturePoint {
    pub(crate) est: Arc<EstimatorShared>,
    pub(crate) index: usize,
}

impl CapturePoint {
    /// Records an event at the current simulation time, without a value.
    pub fn capture(&self, ctx: &ProcCtx) {
        self.push(ctx, None);
    }

    /// Records an event with an associated value.
    pub fn capture_value(&self, ctx: &ProcCtx, value: f64) {
        self.push(ctx, Some(value));
    }

    /// Conditional capture (§4: "capture points can be conditional to a
    /// certain assertion"): records only when `condition` holds.
    pub fn capture_if(&self, ctx: &ProcCtx, condition: bool) {
        if condition {
            self.capture(ctx);
        }
    }

    /// Conditional capture with a value.
    pub fn capture_value_if(&self, ctx: &ProcCtx, condition: bool, value: f64) {
        if condition {
            self.capture_value(ctx, value);
        }
    }

    fn push(&self, ctx: &ProcCtx, value: Option<f64>) {
        // Capture events append to a shared list; fence so same-delta
        // captures land in canonical pid order under parallel evaluation.
        ctx.par_fence();
        let at = ctx.now();
        let mut inner = self.est.inner.lock();
        inner.captures[self.index]
            .events
            .push(CaptureEvent { at, value });
    }
}

impl std::fmt::Debug for CapturePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CapturePoint")
            .field("index", &self.index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(times_ns: &[u64]) -> CaptureList {
        CaptureList {
            name: "probe x".into(),
            events: times_ns
                .iter()
                .map(|&t| CaptureEvent {
                    at: Time::ns(t),
                    value: Some(t as f64 * 2.0),
                })
                .collect(),
        }
    }

    #[test]
    fn intervals_and_mean() {
        let l = list(&[10, 30, 60]);
        assert_eq!(l.intervals(), vec![Time::ns(20), Time::ns(30)]);
        assert_eq!(l.mean_interval(), Some(Time::ns(25)));
        assert_eq!(list(&[5]).mean_interval(), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = list(&[1, 2]).to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ns,value");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "2,4");
    }

    #[test]
    fn matlab_output_is_valid_identifiers() {
        let m = list(&[1]).to_matlab();
        assert!(m.contains("probe_x_t = [1];"));
        assert!(m.contains("probe_x_v = [2];"));
    }

    #[test]
    fn matlab_missing_values_are_nan() {
        let l = CaptureList {
            name: "p".into(),
            events: vec![CaptureEvent {
                at: Time::ns(3),
                value: None,
            }],
        };
        assert!(l.to_matlab().contains("p_v = [NaN];"));
        assert!(l.to_csv().contains("3,\n"));
    }
}
