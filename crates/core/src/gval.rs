//! Annotated value types: the operator-overloading mechanism of §3.
//!
//! The paper replaces ordinary C types by generic classes (`int` →
//! `generic_int` via `#define`) whose overloaded operators add their
//! execution time to the running segment's delay. The Rust analogue is
//! [`G<T>`]: a transparent wrapper implementing the `std::ops` traits, each
//! of which charges its [`Op`] cost to the thread-local estimation context
//! installed by [`crate::PerfModel::spawn`].
//!
//! On parallel (HW) resources every `G` value additionally carries the
//! *ready time* and DFG node of the operation that produced it, which is
//! how the library computes the critical-path `T_min` on the fly.
//!
//! Rust cannot overload `if`, `[]`-on-plain-arrays or function calls
//! transparently; the [`crate::g_if!`], [`crate::g_while!`],
//! [`crate::g_for!`] and [`crate::g_call!`] macros plus [`crate::GArr`]
//! stand in for the paper's parser-inserted marks.
//!
//! Integer arithmetic uses wrapping semantics so that annotated code
//! behaves identically to the reference C benchmarks on overflow.

use std::cmp::Ordering;

use crate::cost::Op;
use crate::hw::NO_NODE;
use crate::tls;

/// An annotated value: behaves like `T`, charges operation costs as it is
/// used.
///
/// # Examples
///
/// ```
/// use scperf_core::{g_i32, G};
///
/// // Outside an analyzed process these behave like plain numbers.
/// let a = g_i32(6);
/// let b = g_i32(7);
/// assert_eq!((a * b).get(), 42);
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct G<T> {
    v: T,
    ready: f64,
    node: u32,
}

#[inline]
fn charge2(op: Op, a: f64, an: u32, b: f64, bn: u32) -> (f64, u32) {
    // Flat fast path: on un-instrumented threads this is a single
    // thread-local flag test, so plain-thread `G<T>` use is near-free.
    tls::charge(op, a, an, b, bn)
}

impl<T: Copy> G<T> {
    /// Wraps a value **without charging anything** — for constants that a
    /// compiler would fold, function parameters already materialized, and
    /// plumbing code outside the measured algorithm.
    #[inline]
    pub fn raw(v: T) -> G<T> {
        G {
            v,
            ready: 0.0,
            node: NO_NODE,
        }
    }

    /// Wraps a value, charging one [`Op::Assign`] (a variable
    /// initialization, `int x = …;`).
    #[inline]
    pub fn init(v: T) -> G<T> {
        let (ready, node) = charge2(Op::Assign, 0.0, NO_NODE, 0.0, NO_NODE);
        G { v, ready, node }
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> T {
        self.v
    }

    /// Assignment (`x = expr;`): charges one [`Op::Assign`] and, on HW
    /// resources, makes this value depend on `rhs`.
    #[inline]
    pub fn assign(&mut self, rhs: G<T>) {
        let (ready, node) = charge2(Op::Assign, rhs.ready, rhs.node, 0.0, NO_NODE);
        self.v = rhs.v;
        self.ready = ready;
        self.node = node;
    }

    /// Assignment from an untracked value.
    #[inline]
    pub fn assign_raw(&mut self, v: T) {
        let (ready, node) = charge2(Op::Assign, 0.0, NO_NODE, 0.0, NO_NODE);
        self.v = v;
        self.ready = ready;
        self.node = node;
    }

    /// The dataflow ready time (cycles) of this value — non-zero only
    /// inside a process mapped to a parallel resource.
    #[inline]
    pub fn ready_cycles(self) -> f64 {
        self.ready
    }

    pub(crate) fn parts(self) -> (T, f64, u32) {
        (self.v, self.ready, self.node)
    }

    pub(crate) fn from_parts(v: T, ready: f64, node: u32) -> G<T> {
        G { v, ready, node }
    }
}

impl<T: Copy> From<T> for G<T> {
    /// Equivalent to [`G::raw`] (no cost): lets untracked scalars flow into
    /// annotated expressions.
    #[inline]
    fn from(v: T) -> G<T> {
        G::raw(v)
    }
}

/// Integer types usable as [`crate::GArr`] indices.
pub trait IndexValue: Copy {
    /// This value as a `usize` array index.
    fn as_index(self) -> usize;
}

macro_rules! impl_index_value {
    ($($t:ty),*) => {$(
        impl IndexValue for $t {
            #[inline]
            fn as_index(self) -> usize {
                self as usize
            }
        }
    )*};
}
impl_index_value!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_binop {
    ($t:ty, $trait:ident, $method:ident, $op:expr, $apply:expr) => {
        impl std::ops::$trait for G<$t> {
            type Output = G<$t>;
            #[inline]
            fn $method(self, rhs: G<$t>) -> G<$t> {
                let (ready, node) = charge2($op, self.ready, self.node, rhs.ready, rhs.node);
                G {
                    v: ($apply)(self.v, rhs.v),
                    ready,
                    node,
                }
            }
        }
        impl std::ops::$trait<$t> for G<$t> {
            type Output = G<$t>;
            #[inline]
            fn $method(self, rhs: $t) -> G<$t> {
                let (ready, node) = charge2($op, self.ready, self.node, 0.0, NO_NODE);
                G {
                    v: ($apply)(self.v, rhs),
                    ready,
                    node,
                }
            }
        }
        impl std::ops::$trait<G<$t>> for $t {
            type Output = G<$t>;
            #[inline]
            fn $method(self, rhs: G<$t>) -> G<$t> {
                let (ready, node) = charge2($op, rhs.ready, rhs.node, 0.0, NO_NODE);
                G {
                    v: ($apply)(self, rhs.v),
                    ready,
                    node,
                }
            }
        }
    };
}

macro_rules! impl_cmp {
    ($t:ty) => {
        impl PartialEq for G<$t> {
            #[inline]
            fn eq(&self, other: &G<$t>) -> bool {
                let _ = charge2(Op::Cmp, self.ready, self.node, other.ready, other.node);
                self.v == other.v
            }
        }
        impl PartialEq<$t> for G<$t> {
            #[inline]
            fn eq(&self, other: &$t) -> bool {
                let _ = charge2(Op::Cmp, self.ready, self.node, 0.0, NO_NODE);
                self.v == *other
            }
        }
        impl PartialOrd for G<$t> {
            #[inline]
            fn partial_cmp(&self, other: &G<$t>) -> Option<Ordering> {
                let _ = charge2(Op::Cmp, self.ready, self.node, other.ready, other.node);
                self.v.partial_cmp(&other.v)
            }
        }
        impl PartialOrd<$t> for G<$t> {
            #[inline]
            fn partial_cmp(&self, other: &$t) -> Option<Ordering> {
                let _ = charge2(Op::Cmp, self.ready, self.node, 0.0, NO_NODE);
                self.v.partial_cmp(other)
            }
        }
    };
}

macro_rules! impl_int_type {
    ($t:ty, $ctor:ident) => {
        impl_binop!($t, Add, add, Op::Add, |a: $t, b: $t| a.wrapping_add(b));
        impl_binop!($t, Sub, sub, Op::Add, |a: $t, b: $t| a.wrapping_sub(b));
        impl_binop!($t, Mul, mul, Op::Mul, |a: $t, b: $t| a.wrapping_mul(b));
        impl_binop!($t, Div, div, Op::Div, |a: $t, b: $t| a / b);
        impl_binop!($t, Rem, rem, Op::Div, |a: $t, b: $t| a % b);
        impl_binop!($t, BitAnd, bitand, Op::Logic, |a: $t, b: $t| a & b);
        impl_binop!($t, BitOr, bitor, Op::Logic, |a: $t, b: $t| a | b);
        impl_binop!($t, BitXor, bitxor, Op::Logic, |a: $t, b: $t| a ^ b);
        impl_binop!($t, Shl, shl, Op::Shift, |a: $t, b: $t| a
            .wrapping_shl(b as u32));
        impl_binop!($t, Shr, shr, Op::Shift, |a: $t, b: $t| a
            .wrapping_shr(b as u32));
        impl_cmp!($t);

        impl std::ops::Not for G<$t> {
            type Output = G<$t>;
            #[inline]
            fn not(self) -> G<$t> {
                let (ready, node) = charge2(Op::Logic, self.ready, self.node, 0.0, NO_NODE);
                G {
                    v: !self.v,
                    ready,
                    node,
                }
            }
        }

        /// Wraps a literal, charging one assignment (like `int x = lit;`).
        #[inline]
        pub fn $ctor(v: $t) -> G<$t> {
            G::init(v)
        }
    };
}

macro_rules! impl_signed_neg {
    ($t:ty) => {
        impl std::ops::Neg for G<$t> {
            type Output = G<$t>;
            #[inline]
            fn neg(self) -> G<$t> {
                let (ready, node) = charge2(Op::Add, self.ready, self.node, 0.0, NO_NODE);
                G {
                    v: self.v.wrapping_neg(),
                    ready,
                    node,
                }
            }
        }
    };
}

macro_rules! impl_float_type {
    ($t:ty, $ctor:ident) => {
        impl_binop!($t, Add, add, Op::FAdd, |a: $t, b: $t| a + b);
        impl_binop!($t, Sub, sub, Op::FAdd, |a: $t, b: $t| a - b);
        impl_binop!($t, Mul, mul, Op::FMul, |a: $t, b: $t| a * b);
        impl_binop!($t, Div, div, Op::FDiv, |a: $t, b: $t| a / b);
        impl_cmp!($t);

        impl std::ops::Neg for G<$t> {
            type Output = G<$t>;
            #[inline]
            fn neg(self) -> G<$t> {
                let (ready, node) = charge2(Op::FAdd, self.ready, self.node, 0.0, NO_NODE);
                G {
                    v: -self.v,
                    ready,
                    node,
                }
            }
        }

        /// Wraps a literal, charging one assignment.
        #[inline]
        pub fn $ctor(v: $t) -> G<$t> {
            G::init(v)
        }
    };
}

impl_int_type!(i16, g_i16);
impl_int_type!(i32, g_i32);
impl_int_type!(i64, g_i64);
impl_int_type!(u8, g_u8);
impl_int_type!(u16, g_u16);
impl_int_type!(u32, g_u32);
impl_int_type!(u64, g_u64);
impl_int_type!(usize, g_usize);
impl_signed_neg!(i16);
impl_signed_neg!(i32);
impl_signed_neg!(i64);
impl_float_type!(f32, g_f32);
impl_float_type!(f64, g_f64);

macro_rules! impl_casts {
    ($t:ty => $($method:ident -> $to:ty),* $(,)?) => {
        impl G<$t> {
            $(
                /// Free type cast of the wrapped value (register move).
                #[inline]
                pub fn $method(self) -> G<$to> {
                    G {
                        v: self.v as $to,
                        ready: self.ready,
                        node: self.node,
                    }
                }
            )*
        }
    };
}

impl_casts!(i16 => cast_i32 -> i32, cast_i64 -> i64, cast_f64 -> f64);
impl_casts!(i32 => cast_i16 -> i16, cast_i64 -> i64, cast_usize -> usize, cast_f64 -> f64, cast_u32 -> u32);
impl_casts!(i64 => cast_i32 -> i32, cast_f64 -> f64, cast_usize -> usize);
impl_casts!(u8 => cast_u32 -> u32, cast_usize -> usize, cast_i32 -> i32);
impl_casts!(u16 => cast_u32 -> u32, cast_usize -> usize, cast_i32 -> i32);
impl_casts!(u32 => cast_i32 -> i32, cast_i64 -> i64, cast_usize -> usize, cast_u8 -> u8);
impl_casts!(u64 => cast_i64 -> i64, cast_usize -> usize);
impl_casts!(usize => cast_i32 -> i32, cast_i64 -> i64, cast_u32 -> u32);
impl_casts!(f64 => cast_f32 -> f32, cast_i32 -> i32, cast_i64 -> i64);
impl_casts!(f32 => cast_f64 -> f64, cast_i32 -> i32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTable;
    use crate::resource::ResourceKind;
    use crate::tls::testutil::with_test_ctx;

    #[test]
    fn arithmetic_matches_plain_semantics() {
        let a = g_i32(i32::MAX);
        let b = a + 1; // wrapping, like the fixed-point reference code
        assert_eq!(b.get(), i32::MIN);
        assert_eq!((g_i32(7) % 3).get(), 1);
        assert_eq!((g_u32(0b1100) & 0b1010).get(), 0b1000);
        assert_eq!((g_i64(-5)).get(), -5);
        assert_eq!((-g_i64(5)).get(), -5);
        assert_eq!((g_f64(1.5) * 2.0).get(), 3.0);
    }

    #[test]
    fn comparisons_return_plain_bools() {
        assert!(g_i32(1) < g_i32(2));
        assert!(g_i32(2) <= 2);
        assert!(g_f64(2.5) > g_f64(1.0));
        assert!(g_i32(3) == 3);
    }

    #[test]
    fn costs_are_charged_per_operator() {
        let table = CostTable::from_pairs([
            (Op::Assign, 2.0),
            (Op::Add, 1.0),
            (Op::Mul, 3.0),
            (Op::Cmp, 0.5),
        ]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            let a = g_i32(1); // assign: 2
            let b = g_i32(2); // assign: 2
            let c = a + b; // add: 1
            let d = c * a; // mul: 3
            let _ = d < a; // cmp: 0.5
            let mut e = G::raw(0); // free
            e.assign(d); // assign: 2
        });
        assert_eq!(ctx.acc, 10.5);
        assert_eq!(ctx.counts.get(Op::Assign), 3);
        assert_eq!(ctx.counts.get(Op::Add), 1);
    }

    #[test]
    fn raw_values_are_free() {
        let ctx = with_test_ctx(
            ResourceKind::Sequential,
            CostTable::risc_sw(),
            false,
            || {
                let a: G<i64> = G::raw(5);
                let b: G<i64> = 7.into();
                let _ = a.get() + b.get();
            },
        );
        assert_eq!(ctx.acc, 0.0);
    }

    #[test]
    fn hw_mode_tracks_critical_path() {
        // add: 1 cycle, mul: 2 cycles.
        let table = CostTable::from_pairs([(Op::Add, 1.0), (Op::Mul, 2.0)]);
        let ctx = with_test_ctx(ResourceKind::Parallel, table, false, || {
            let a: G<i32> = G::raw(1);
            let b: G<i32> = G::raw(2);
            // Two independent adds (parallel), then a dependent multiply.
            let s1 = a + b; // ready 1
            let s2 = a + b; // ready 1 (parallel with s1)
            let _p = s1 * s2; // ready 3
        });
        assert_eq!(ctx.max_ready, 3.0); // T_min: critical path
        assert_eq!(ctx.acc, 4.0); // T_max: 1 + 1 + 2
    }

    #[test]
    fn hw_mode_records_dfg_when_enabled() {
        let table = CostTable::from_pairs([(Op::Add, 1.0), (Op::Mul, 2.0)]);
        let mut ctx = with_test_ctx(ResourceKind::Parallel, table, true, || {
            let a: G<i32> = G::raw(1);
            let s = a + a;
            let _p = s * s;
        });
        let dfg = ctx.take_segment().dfg.expect("dfg recorded");
        assert_eq!(dfg.len(), 2);
        assert_eq!(dfg.critical_path(), 3);
        assert_eq!(dfg.sequential_cycles(), 3);
    }

    #[test]
    fn casts_preserve_value_and_lineage() {
        let a = g_i32(-3);
        let b = a.cast_i64();
        assert_eq!(b.get(), -3_i64);
        let c = g_f64(2.9).cast_i32();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn index_value_covers_signed() {
        assert_eq!(5_i32.as_index(), 5);
        assert_eq!(5_u64.as_index(), 5);
    }
}
