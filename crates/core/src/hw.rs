//! Hardware-segment timing: critical path vs single-ALU extremes, and the
//! dataflow graph (DFG) recording consumed by the `scperf-hls` baseline.
//!
//! §3 of the paper: for parallel (HW) resources the implementation space is
//! bounded by two extremes —
//!
//! * **best case** `T_min`: the critical path of the segment's operation
//!   dataflow, with every operation taking a whole number of clock cycles
//!   (the fastest implementation regardless of area), and
//! * **worst case** `T_max`: all operations executed sequentially on a
//!   single ALU (the smallest implementation).
//!
//! The annotated time is the weighted mean `T = T_min + (T_max − T_min)·k`.
//! The estimation context computes both on the fly; when DFG recording is
//! enabled, the full graph is kept so that a behavioral-synthesis scheduler
//! can produce reference times for the same segment (Tables 2 and 4).
//!
//! Since operations have at most two operands, predecessors are stored
//! inline as a `[u32; 2]` — recording a node never heap-allocates, and the
//! node buffer itself is arena-recycled across segments by the estimation
//! context. `critical_path`/`sequential_cycles` are computed once and
//! cached on the graph (the estimator seals each recorded graph at the
//! segment boundary), so report rendering never rescans the node list.

use std::cell::Cell;

use crate::cost::Op;

/// Sentinel "no producer" DFG node id carried by values that were not
/// produced by a recorded operation (inputs, constants, SW-mode values).
pub const NO_NODE: u32 = 0;

/// One operation node of a recorded dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfgNode {
    /// Operation class.
    pub op: Op,
    /// Latency in whole clock cycles.
    pub latency: u64,
    /// Inline predecessor slots; only the first `npreds` are meaningful
    /// (unused slots hold [`NO_NODE`] so derived equality stays exact).
    preds: [u32; 2],
    /// Number of meaningful entries in `preds`.
    npreds: u8,
}

impl DfgNode {
    /// Producer nodes of the operands (ids; [`NO_NODE`] entries omitted).
    #[inline]
    pub fn preds(&self) -> &[u32] {
        &self.preds[..self.npreds as usize]
    }
}

/// A dataflow graph recorded from one executed segment on a parallel
/// resource.
///
/// Node ids are 1-based ([`NO_NODE`] = 0 is reserved); `nodes[i]` has id
/// `i + 1`. Edges always point from earlier to later nodes, so the graph is
/// acyclic by construction.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    nodes: Vec<DfgNode>,
    /// Cached `(critical_path, sequential_cycles)`; invalidated by `push`.
    times: Cell<Option<(u64, u64)>>,
}

impl PartialEq for Dfg {
    fn eq(&self, other: &Dfg) -> bool {
        // The cache is derived state: graphs compare by nodes only.
        self.nodes == other.nodes
    }
}

impl Eq for Dfg {}

thread_local! {
    /// Counts actual time recomputations (not cache hits) on this thread;
    /// exists so tests can assert that sealed graphs never rescan.
    static TIME_COMPUTATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of `critical_path`/`sequential_cycles` *recomputations* (cache
/// misses) performed on the calling thread since it started. Test
/// instrumentation for the "report rendering does not rescan DFGs"
/// regression; not a stable API.
#[doc(hidden)]
pub fn dfg_time_computations() -> u64 {
    TIME_COMPUTATIONS.with(|c| c.get())
}

impl Dfg {
    /// An empty graph.
    pub fn new() -> Dfg {
        Dfg::default()
    }

    /// An empty graph reusing `buffer`'s allocation (arena recycling:
    /// the buffer is cleared but keeps its capacity).
    pub(crate) fn from_buffer(mut buffer: Vec<DfgNode>) -> Dfg {
        buffer.clear();
        Dfg {
            nodes: buffer,
            times: Cell::new(None),
        }
    }

    /// Consumes the graph, returning its node buffer for recycling.
    pub(crate) fn into_buffer(self) -> Vec<DfgNode> {
        self.nodes
    }

    /// Appends an operation node and returns its id.
    pub fn push(&mut self, op: Op, latency: u64, a: u32, b: u32) -> u32 {
        let mut preds = [NO_NODE; 2];
        let mut npreds = 0u8;
        if a != NO_NODE {
            preds[0] = a;
            npreds = 1;
        }
        if b != NO_NODE && b != a {
            preds[npreds as usize] = b;
            npreds += 1;
        }
        self.nodes.push(DfgNode {
            op,
            latency,
            preds,
            npreds,
        });
        self.times.set(None);
        self.nodes.len() as u32
    }

    /// The nodes in creation (= topological) order.
    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    /// Number of operation nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The predecessors of node `id` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `id` is [`NO_NODE`] or out of range.
    pub fn preds(&self, id: u32) -> &[u32] {
        self.nodes[(id - 1) as usize].preds()
    }

    /// Computes `(critical_path, sequential_cycles)` in one scan, using
    /// `finish` as the ASAP finish-time scratch buffer.
    fn compute_times(&self, finish: &mut Vec<u64>) -> (u64, u64) {
        TIME_COMPUTATIONS.with(|c| c.set(c.get() + 1));
        finish.clear();
        finish.resize(self.nodes.len() + 1, 0);
        let mut best = 0;
        let mut total = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            let start = n
                .preds()
                .iter()
                .map(|&p| finish[p as usize])
                .max()
                .unwrap_or(0);
            finish[i + 1] = start + n.latency;
            best = best.max(finish[i + 1]);
            total += n.latency;
        }
        (best, total)
    }

    /// Computes and caches both times, reusing the caller's scratch
    /// buffer. Called by the estimation context at `take_segment` so
    /// every recorded graph reaches the report layer pre-sealed.
    pub(crate) fn seal(&mut self, scratch: &mut Vec<u64>) {
        if self.times.get().is_none() {
            let t = self.compute_times(scratch);
            self.times.set(Some(t));
        }
    }

    /// Cached times, computing (with a fresh scratch buffer) on miss.
    fn times(&self) -> (u64, u64) {
        if let Some(t) = self.times.get() {
            return t;
        }
        let t = self.compute_times(&mut Vec::new());
        self.times.set(Some(t));
        t
    }

    /// Critical-path length in cycles (ASAP finish time of the last node):
    /// the `T_min` of §3. Cached after the first call.
    pub fn critical_path(&self) -> u64 {
        self.times().0
    }

    /// Sum of all node latencies (single-ALU sequential execution): the
    /// `T_max` of §3. Cached after the first call.
    pub fn sequential_cycles(&self) -> u64 {
        self.times().1
    }

    /// Renders the graph in Graphviz DOT format.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(out, "  n{} [label=\"{} ({}cy)\"];", i + 1, n.op, n.latency);
            for &p in n.preds() {
                let _ = writeln!(out, "  n{} -> n{};", p, i + 1);
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The weighted HW time annotation of §3:
/// `T = T_min + (T_max − T_min) · k`, with `k ∈ [0, 1]`.
///
/// `k = 0` assumes the performance-optimal implementation (critical path),
/// `k = 1` the cost-optimal one (single ALU). Out-of-range `k` is clamped
/// to `[0, 1]` so the estimate never extrapolates past either bound.
///
/// # Panics
///
/// Panics if `k` is NaN — there is no meaningful interpolation point and
/// silently propagating NaN would poison every downstream cost figure.
pub fn weighted_hw_cycles(t_min: f64, t_max: f64, k: f64) -> f64 {
    assert!(
        !k.is_nan(),
        "weighted_hw_cycles: interpolation weight k is NaN"
    );
    let k = k.clamp(0.0, 1.0);
    let t_max = t_max.max(t_min);
    t_min + (t_max - t_min) * k
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the diamond  a→b, a→c, {b,c}→d  with latencies 1,2,3,1.
    fn diamond() -> Dfg {
        let mut g = Dfg::new();
        let a = g.push(Op::Add, 1, NO_NODE, NO_NODE);
        let b = g.push(Op::Mul, 2, a, NO_NODE);
        let c = g.push(Op::Div, 3, a, NO_NODE);
        let _d = g.push(Op::Add, 1, b, c);
        g
    }

    #[test]
    fn critical_path_of_diamond() {
        let g = diamond();
        // a(1) → c(3) → d(1) = 5
        assert_eq!(g.critical_path(), 5);
        assert_eq!(g.sequential_cycles(), 7);
    }

    #[test]
    fn empty_graph_has_zero_times() {
        let g = Dfg::new();
        assert_eq!(g.critical_path(), 0);
        assert_eq!(g.sequential_cycles(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        let mut g = Dfg::new();
        for _ in 0..8 {
            g.push(Op::Add, 1, NO_NODE, NO_NODE);
        }
        assert_eq!(g.critical_path(), 1);
        assert_eq!(g.sequential_cycles(), 8);
    }

    #[test]
    fn duplicate_operand_produces_single_edge() {
        let mut g = Dfg::new();
        let a = g.push(Op::Add, 1, NO_NODE, NO_NODE);
        let b = g.push(Op::Mul, 1, a, a); // x * x
        assert_eq!(g.preds(b), &[a]);
    }

    #[test]
    fn times_are_cached_until_the_next_push() {
        let mut g = diamond();
        let before = dfg_time_computations();
        assert_eq!(g.critical_path(), 5);
        assert_eq!(g.sequential_cycles(), 7);
        assert_eq!(g.critical_path(), 5);
        assert_eq!(
            dfg_time_computations(),
            before + 1,
            "one scan serves every subsequent query"
        );
        // A push invalidates the cache; the next query rescans once.
        g.push(Op::Add, 4, NO_NODE, NO_NODE);
        assert_eq!(g.critical_path(), 5);
        assert_eq!(g.sequential_cycles(), 11);
        assert_eq!(dfg_time_computations(), before + 2);
    }

    #[test]
    fn sealed_graphs_answer_without_rescanning() {
        let mut g = diamond();
        let mut scratch = Vec::new();
        g.seal(&mut scratch);
        let before = dfg_time_computations();
        assert_eq!(g.critical_path(), 5);
        assert_eq!(g.sequential_cycles(), 7);
        assert_eq!(dfg_time_computations(), before);
    }

    #[test]
    fn buffer_recycling_preserves_capacity_and_resets_nodes() {
        let g = diamond();
        let buf = g.into_buffer();
        let cap = buf.capacity();
        assert!(cap >= 4);
        let g2 = Dfg::from_buffer(buf);
        assert!(g2.is_empty());
        assert_eq!(g2.critical_path(), 0);
        assert!(g2.nodes.capacity() >= cap);
    }

    #[test]
    fn clones_and_equality_ignore_the_cache() {
        let g = diamond();
        let mut h = g.clone();
        let _ = g.critical_path(); // populate g's cache only
        assert_eq!(g, h);
        h.seal(&mut Vec::new());
        assert_eq!(g, h);
    }

    #[test]
    fn weighted_interpolation_endpoints() {
        assert_eq!(weighted_hw_cycles(5.0, 9.0, 0.0), 5.0);
        assert_eq!(weighted_hw_cycles(5.0, 9.0, 1.0), 9.0);
        assert_eq!(weighted_hw_cycles(5.0, 9.0, 0.5), 7.0);
        // Degenerate: t_max below t_min is clamped.
        assert_eq!(weighted_hw_cycles(5.0, 3.0, 1.0), 5.0);
    }

    #[test]
    fn weighted_interpolation_clamps_out_of_range_k() {
        // k past either bound sticks to the corresponding endpoint rather
        // than extrapolating beyond the [T_min, T_max] envelope.
        assert_eq!(weighted_hw_cycles(5.0, 9.0, 2.0), 9.0);
        assert_eq!(weighted_hw_cycles(5.0, 9.0, -0.5), 5.0);
        assert_eq!(weighted_hw_cycles(5.0, 9.0, f64::INFINITY), 9.0);
        assert_eq!(weighted_hw_cycles(5.0, 9.0, f64::NEG_INFINITY), 5.0);
    }

    #[test]
    #[should_panic(expected = "interpolation weight k is NaN")]
    fn weighted_interpolation_rejects_nan_k() {
        let _ = weighted_hw_cycles(5.0, 9.0, f64::NAN);
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let g = diamond();
        let dot = g.to_dot("seg");
        assert!(dot.contains("digraph \"seg\""));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.contains("n3 -> n4;"));
    }
}
