//! Rate analysis and fixed-priority schedulability (§6).
//!
//! "Based on the mean execution times and periods of the different
//! processes, rate analysis and scheduling for soft, real-time embedded
//! systems can be performed. The instantaneous execution times for the
//! segments in the different processes can be used for performance
//! verification and scheduling of hard, real-time systems."
//!
//! This module turns the library's outputs into exactly that: task sets
//! built from per-process estimates ([`Task::from_report`]) or from
//! capture-point event lists ([`Task::with_period_from_captures`]), the
//! Liu–Layland utilization test and exact response-time analysis for
//! rate-monotonic scheduling.

use scperf_kernel::Time;

use crate::capture::CaptureList;
use crate::report::ProcessReport;

/// A periodic task: an estimated worst-case execution time and a period
/// (deadline = period).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// Worst-case execution time per activation.
    pub wcet: Time,
    /// Activation period (= implicit deadline).
    pub period: Time,
}

impl Task {
    /// Builds a task from a process report: the WCET is the process's
    /// maximum observed segment time (plus its per-segment RTOS share),
    /// scaled by the number of segments per activation.
    ///
    /// `segments_per_activation` is how many of the process's segments make
    /// up one activation (e.g. a stage that reads, computes and writes per
    /// frame has 2 channel-bounded segments per frame).
    pub fn from_report(p: &ProcessReport, period: Time, segments_per_activation: u64) -> Task {
        let max_seg_cycles = p
            .segments
            .iter()
            .map(|s| s.stats.max_cycles)
            .fold(0.0_f64, f64::max);
        let per_seg_rtos = if p.segment_executions == 0 {
            Time::ZERO
        } else {
            p.rtos_time / p.segment_executions
        };
        let per_seg = if p.total_cycles > 0.0 {
            Time::from_ps_f64(max_seg_cycles / p.total_cycles * p.total_time.as_ps() as f64)
        } else {
            Time::ZERO
        };
        let wcet = (per_seg + per_seg_rtos) * segments_per_activation;
        Task {
            name: p.name.clone(),
            wcet,
            period,
        }
    }

    /// Builds a task whose period is the mean inter-event interval of a
    /// capture point (the §4 rate-analysis workflow).
    ///
    /// Returns `None` when the capture list holds fewer than two events.
    pub fn with_period_from_captures(
        name: impl Into<String>,
        wcet: Time,
        captures: &CaptureList,
    ) -> Option<Task> {
        Some(Task {
            name: name.into(),
            wcet,
            period: captures.mean_interval()?,
        })
    }

    /// This task's utilization `C/T`.
    pub fn utilization(&self) -> f64 {
        if self.period.is_zero() {
            f64::INFINITY
        } else {
            self.wcet.as_ps() as f64 / self.period.as_ps() as f64
        }
    }
}

/// Total utilization of a task set.
pub fn utilization(tasks: &[Task]) -> f64 {
    tasks.iter().map(Task::utilization).sum()
}

/// The Liu–Layland rate-monotonic utilization bound `n(2^{1/n} − 1)`.
pub fn rm_utilization_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * (2.0_f64.powf(1.0 / n) - 1.0)
}

/// The sufficient (not necessary) Liu–Layland test: `Some(true)` when the
/// set is guaranteed schedulable under RM, `Some(false)` when utilization
/// exceeds 1 (definitely unschedulable), `None` when inconclusive (between
/// the bound and 1 — use [`response_times`]).
pub fn rm_utilization_test(tasks: &[Task]) -> Option<bool> {
    let u = utilization(tasks);
    if u <= rm_utilization_bound(tasks.len()) {
        Some(true)
    } else if u > 1.0 {
        Some(false)
    } else {
        None
    }
}

/// Exact response-time analysis for fixed-priority preemptive scheduling
/// with rate-monotonic priorities (shorter period = higher priority).
///
/// Returns, per task (in the input order), `Some(worst-case response
/// time)` when the task meets its deadline and `None` when it provably
/// does not.
pub fn response_times(tasks: &[Task]) -> Vec<Option<Time>> {
    // Priority order: by period ascending (ties: input order).
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks[i].period, i));
    let mut result = vec![None; tasks.len()];
    for (rank, &i) in order.iter().enumerate() {
        let task = &tasks[i];
        let higher = &order[..rank];
        let mut r = task.wcet;
        // Fixed-point iteration: R = C + Σ ceil(R/Tj)·Cj.
        let mut converged = false;
        for _ in 0..1000 {
            let mut next = task.wcet;
            for &j in higher {
                let tj = tasks[j].period.as_ps();
                let interference = r.as_ps().div_ceil(tj.max(1));
                next += tasks[j].wcet * interference;
            }
            if next == r {
                converged = true;
                break;
            }
            if next > task.period {
                break; // deadline miss
            }
            r = next;
        }
        if converged && r <= task.period {
            result[i] = Some(r);
        }
    }
    result
}

/// `true` when every task's exact worst-case response time meets its
/// deadline under RM scheduling.
pub fn rm_schedulable(tasks: &[Task]) -> bool {
    response_times(tasks).iter().all(Option::is_some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, wcet_us: u64, period_us: u64) -> Task {
        Task {
            name: name.into(),
            wcet: Time::us(wcet_us),
            period: Time::us(period_us),
        }
    }

    #[test]
    fn utilization_sums() {
        let ts = vec![task("a", 1, 4), task("b", 1, 2)];
        assert!((utilization(&ts) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn liu_layland_bound_values() {
        assert!((rm_utilization_bound(1) - 1.0).abs() < 1e-12);
        assert!((rm_utilization_bound(2) - 0.8284).abs() < 1e-3);
        assert!((rm_utilization_bound(3) - 0.7798).abs() < 1e-3);
        // n → ∞: ln 2 ≈ 0.693.
        assert!((rm_utilization_bound(10_000) - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn utilization_test_classifies() {
        assert_eq!(
            rm_utilization_test(&[task("a", 1, 4), task("b", 1, 8)]),
            Some(true)
        );
        assert_eq!(
            rm_utilization_test(&[task("a", 3, 4), task("b", 3, 8)]),
            Some(false)
        );
        // The classic inconclusive zone.
        assert_eq!(
            rm_utilization_test(&[task("a", 1, 2), task("b", 2, 5)]),
            None
        );
    }

    #[test]
    fn response_times_textbook_example() {
        // Buttazzo-style: T1(C=1,T=4), T2(C=2,T=6), T3(C=3,T=12).
        let ts = vec![task("t1", 1, 4), task("t2", 2, 6), task("t3", 3, 12)];
        let r = response_times(&ts);
        assert_eq!(r[0], Some(Time::us(1)));
        assert_eq!(r[1], Some(Time::us(3)));
        // t3: R = 3 + ceil(R/4)·1 + ceil(R/6)·2 → 6, 7, 9, 10, 10 (fixed
        // point): three T1 jobs and two T2 jobs fit before it completes.
        assert_eq!(r[2], Some(Time::us(10)));
        assert!(rm_schedulable(&ts));
    }

    #[test]
    fn overloaded_low_priority_misses() {
        let ts = vec![task("hi", 2, 4), task("lo", 3, 6)];
        let r = response_times(&ts);
        assert_eq!(r[0], Some(Time::us(2)));
        assert_eq!(r[1], None, "lo: 3 + 2·ceil(R/4) never fits in 6");
        assert!(!rm_schedulable(&ts));
    }

    #[test]
    fn full_utilization_harmonic_set_is_schedulable() {
        // Harmonic periods reach U = 1 and still schedule.
        let ts = vec![task("a", 2, 4), task("b", 4, 8)];
        assert!((utilization(&ts) - 1.0).abs() < 1e-12);
        assert!(rm_schedulable(&ts));
    }

    #[test]
    fn task_from_captures_uses_mean_interval() {
        let captures = CaptureList {
            name: "beat".into(),
            events: (0..5)
                .map(|i| crate::capture::CaptureEvent {
                    at: Time::us(10 * i),
                    value: None,
                })
                .collect(),
        };
        let t = Task::with_period_from_captures("p", Time::us(2), &captures).unwrap();
        assert_eq!(t.period, Time::us(10));
        assert!((t.utilization() - 0.2).abs() < 1e-12);
        let empty = CaptureList {
            name: "e".into(),
            events: vec![],
        };
        assert!(Task::with_period_from_captures("p", Time::us(1), &empty).is_none());
    }

    #[test]
    fn zero_period_is_infinite_utilization() {
        let t = task("z", 1, 0);
        assert!(t.utilization().is_infinite());
    }
}
