//! The coherent record/replay pair: [`Recorder`] captures per-segment
//! cycle traces during a run, [`Replay`] feeds a captured trace back
//! into a later run.
//!
//! This replaces the historical ad-hoc trio
//! `PerfModel::record_segment_costs` / `PerfModel::segment_cost_trace` /
//! `PerfModel::spawn_replay` (kept as deprecated shims): recording is
//! now a capability you *hold* — a [`Recorder`] handle obtained before
//! the run — and a captured trace is a first-class [`Replay`] value that
//! can be cached, cloned cheaply and handed to
//! [`PerfModel::spawn_replaying`](crate::PerfModel::spawn_replaying) or
//! [`Session::spawn_replaying`](crate::Session::spawn_replaying).
//!
//! # Soundness
//!
//! Replaying is sound when the recorded process's charging is
//! deterministic in (code, input data, cost table) — the single-source
//! methodology's data-independence assumption. A replayed process must
//! perform the same sequence of channel accesses and waits as the
//! recorded run; it is the caller's responsibility to key cached
//! replays on everything the annotation depends on (process identity,
//! workload size, resource kind, clock, cost table, `k`, RTOS
//! overhead). `scperf_dse::SegmentCostCache` shows the canonical
//! fingerprinting scheme.

use std::sync::Arc;

use crate::cost::OpCounts;
use crate::estimator::EstimatorShared;

/// Per-segment bookkeeping captured alongside the cycle trace: the
/// operation counts and (for parallel resources) the `T_min`/`T_max`
/// extremes. Replaying it makes the replayed run's [`crate::Report`]
/// bit-identical to the live run's, not just its timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SegDetail {
    pub(crate) counts: OpCounts,
    pub(crate) t_min: f64,
    pub(crate) t_max: f64,
}

/// A captured per-segment cycle trace, ready to be replayed.
///
/// Cheap to clone (the trace is shared behind an [`Arc`]); equality
/// compares the recorded cycles bit-for-bit.
///
/// Traces captured by a [`Recorder`] also carry the per-segment
/// operation counts and HW extremes, so a replayed run's
/// [`crate::Report`] matches the live run's bit for bit. Traces built
/// from bare cycle vectors ([`Replay::new`] / [`Replay::from_arc`])
/// replay timing only: replayed segments then report empty operation
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    trace: Arc<Vec<f64>>,
    detail: Option<Arc<Vec<SegDetail>>>,
}

impl Replay {
    /// Wraps an explicit cycle trace (one entry per segment boundary,
    /// in execution order).
    pub fn new(cycles: Vec<f64>) -> Replay {
        Replay {
            trace: Arc::new(cycles),
            detail: None,
        }
    }

    /// Wraps an already-shared cycle trace without copying.
    pub fn from_arc(trace: Arc<Vec<f64>>) -> Replay {
        Replay {
            trace,
            detail: None,
        }
    }

    /// Builds a replay that also carries per-segment detail (op counts,
    /// HW extremes), as captured by a [`Recorder`].
    pub(crate) fn with_detail(trace: Arc<Vec<f64>>, detail: Arc<Vec<SegDetail>>) -> Replay {
        debug_assert_eq!(trace.len(), detail.len());
        Replay {
            trace,
            detail: Some(detail),
        }
    }

    /// Splits the replay into its shared trace and optional detail.
    pub(crate) fn into_cursor_parts(self) -> (Arc<Vec<f64>>, Option<Arc<Vec<SegDetail>>>) {
        (self.trace, self.detail)
    }

    /// The recorded cycles, one entry per segment boundary.
    pub fn cycles(&self) -> &[f64] {
        &self.trace
    }

    /// Number of recorded segment boundaries.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace holds no segments.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// The shared trace storage (no copy).
    pub fn into_arc(self) -> Arc<Vec<f64>> {
        self.trace
    }
}

/// A handle that captures per-segment cycle traces during a run.
///
/// Obtained from [`PerfModel::recorder`](crate::PerfModel::recorder) or
/// [`SimConfig::record_costs`](crate::SimConfig::record_costs) /
/// [`Session::recorder`](crate::Session::recorder) **before** the
/// simulation runs; recording costs one `Vec::push` per segment
/// boundary. After the run, [`Recorder::replay`] hands back each
/// process's trace as a [`Replay`].
///
/// # Examples
///
/// ```
/// use scperf_core::{g_i64, CostTable, Mode, Platform, SimConfig};
/// use scperf_kernel::Time;
///
/// let mut platform = Platform::new();
/// let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 0.0);
///
/// // First run: record.
/// let mut session = SimConfig::new().platform(platform.clone()).build();
/// let recorder = session.recorder();
/// session.spawn("worker", cpu, |_ctx| {
///     let mut acc = g_i64(0);
///     for i in 0..8 {
///         acc = acc + g_i64(i);
///     }
/// });
/// let live = session.run()?;
/// let replay = recorder.replay("worker").expect("recorded");
///
/// // Second run: replay the plain (un-annotated) body — same timing.
/// let mut session = SimConfig::new().platform(platform).build();
/// session.spawn_replaying("worker", cpu, replay, |_ctx| {
///     let mut acc = 0_i64;
///     for i in 0..8 {
///         acc += i;
///     }
///     assert_eq!(acc, 28);
/// });
/// let replayed = session.run()?;
/// assert_eq!(replayed.end_time, live.end_time);
/// # Ok::<(), scperf_kernel::SimError>(())
/// ```
#[derive(Clone)]
pub struct Recorder {
    est: Arc<EstimatorShared>,
}

impl Recorder {
    /// Creates the handle and switches segment-cost recording on for
    /// every process the estimator runs from now on.
    pub(crate) fn attach(est: &Arc<EstimatorShared>) -> Recorder {
        est.inner.lock().record_segment_costs = true;
        Recorder {
            est: Arc::clone(est),
        }
    }

    /// The captured trace of `process`, ready to replay. `None` when
    /// the process is unknown to the estimator; an empty replay when
    /// the process closed no segments.
    pub fn replay(&self, process: &str) -> Option<Replay> {
        let inner = self.est.inner.lock();
        inner.procs.values().find(|p| p.name == process).map(|p| {
            Replay::with_detail(
                Arc::new(p.cost_trace.clone()),
                Arc::new(p.detail_trace.clone()),
            )
        })
    }

    /// All captured traces, as `(process name, replay)` pairs in
    /// process-registration order.
    pub fn replays(&self) -> Vec<(String, Replay)> {
        let inner = self.est.inner.lock();
        inner
            .procs
            .values()
            .map(|p| {
                (
                    p.name.clone(),
                    Replay::with_detail(
                        Arc::new(p.cost_trace.clone()),
                        Arc::new(p.detail_trace.clone()),
                    ),
                )
            })
            .collect()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.est.inner.lock();
        f.debug_struct("Recorder")
            .field("processes", &inner.procs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_wraps_and_shares_cycles() {
        let r = Replay::new(vec![1.0, 2.5]);
        assert_eq!(r.cycles(), &[1.0, 2.5]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let clone = r.clone();
        assert_eq!(clone, r);
        assert!(Arc::ptr_eq(&clone.clone().into_arc(), &r.into_arc()));
    }

    #[test]
    fn empty_replay_reports_empty() {
        assert!(Replay::new(Vec::new()).is_empty());
        assert!(Replay::from_arc(Arc::new(Vec::new())).is_empty());
    }
}
