//! [`PerfModel`]: the user-facing entry point tying the estimation library
//! to a kernel [`Simulator`].
//!
//! The paper's library is "included within a usual simulation" without
//! changing the source. The Rust equivalent: build your processes and
//! channels through a `PerfModel` instead of directly through the
//! `Simulator`, write the process bodies against the annotated [`crate::G`]
//! types, and the same model runs untimed ([`Mode::EstimateOnly`]) or
//! strict-timed ([`Mode::StrictTimed`]) — no other change.

use std::sync::Arc;

use scperf_kernel::{Fifo, ProcCtx, ProcId, Rendezvous, Signal, Simulator, Time};

use crate::capture::{CaptureList, CapturePoint};
use crate::cost::OpCounts;
use crate::estimator::{end_segment, EstHotStats, EstimatorShared, Mode, NODE_WAIT};
use crate::hw::Dfg;
use crate::prog::{fingerprint_costs, ProgStore, ProgramSet};
use crate::recorder::{Recorder, Replay};
use crate::report::Report;
use crate::resource::{Platform, ResourceId};
use crate::site::MemoMode;
use crate::tls;

/// The performance-analysis model: a [`Platform`], an architectural mapping
/// and the estimation state, layered over a kernel [`Simulator`].
///
/// # Examples
///
/// ```
/// use scperf_core::{g_i64, CostTable, Mode, PerfModel, Platform};
/// use scperf_kernel::{Simulator, Time};
///
/// let mut platform = Platform::new();
/// let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 50.0);
///
/// let mut sim = Simulator::new();
/// let model = PerfModel::new(platform, Mode::StrictTimed);
/// let ch = model.fifo::<i64>(&mut sim, "out", 4);
/// let tx = ch.clone();
/// model.spawn(&mut sim, "worker", cpu, move |ctx| {
///     let mut acc = g_i64(0);
///     for i in 0..10 {
///         acc = acc + g_i64(i);
///     }
///     tx.write(ctx, acc.get());
/// });
/// let rx = ch;
/// sim.spawn("sink", move |ctx| {
///     assert_eq!(rx.read(ctx), 45);
/// });
/// sim.run()?;
/// let report = model.report();
/// assert!(report.processes[0].total_cycles > 0.0);
/// # Ok::<(), scperf_kernel::SimError>(())
/// ```
pub struct PerfModel {
    est: Arc<EstimatorShared>,
}

impl PerfModel {
    /// Creates a model for `platform` operating in `mode`.
    pub fn new(platform: Platform, mode: Mode) -> PerfModel {
        PerfModel {
            est: EstimatorShared::new(platform, mode),
        }
    }

    /// The model's mode.
    pub fn mode(&self) -> Mode {
        self.est.inner.lock().mode
    }

    /// Record one `(time, cycles)` sample per segment execution (the
    /// paper's "instantaneous estimated parameters"). Off by default.
    pub fn record_instantaneous(&self) {
        self.est.inner.lock().record_instantaneous = true;
    }

    /// Record the dataflow graph of each hardware segment's first
    /// execution, for export to the HLS scheduler. Off by default.
    pub fn record_dfgs(&self) {
        self.est.inner.lock().record_dfgs = true;
    }

    /// Enables/disables resource-contention attribution: per-resource
    /// arbitration-wait accounting (`est.res.*` metrics and the
    /// [`crate::UtilizationReport`]). Measurement-only — estimates and
    /// the strict-timed schedule are bit-identical either way. Off by
    /// default.
    pub fn attribution(&self, enable: bool) {
        self.est.inner.lock().attribution = enable;
    }

    /// Routes operator charging through the legacy `RefCell`-per-op path
    /// instead of the flat thread-local fast path. Bit-identical results,
    /// strictly slower — exists as the measurable baseline for
    /// `estimator_bench` and as a diagnostic escape hatch.
    pub fn legacy_charging(&self, enable: bool) {
        self.est.inner.lock().legacy_charging = enable;
    }

    /// Sets the segment-site memoization policy for processes spawned
    /// after this call (default: [`MemoMode::Replay`]). Memoization only
    /// actually engages for live estimation on sequential resources with
    /// integer-valued cost tables — see [`crate::g_loop!`].
    pub fn site_memo(&self, mode: MemoMode) {
        self.est.inner.lock().memo_mode = mode;
    }

    /// Hands processes spawned after this call a warm [`ProgramSet`]:
    /// cost programs recorded by an earlier run (or another worker) are
    /// compiled and replayed on local site misses instead of
    /// re-recording. A set whose fingerprint does not match the
    /// process's cost table is ignored (counted in `est.prog.rejects`)
    /// and the run records afresh — a stale set can cost speed, never
    /// correctness.
    pub fn warm_programs(&self, set: Arc<ProgramSet>) {
        self.est.inner.lock().warm_programs = Some(set);
    }

    /// The cost programs recorded by this run's processes at named
    /// (`g_loop!`/`g_site!`) sites, merged across processes. Empty until
    /// a run with memoization engaged has finished. Serialize it with
    /// [`ProgramSet::to_bytes`] and warm-start a later run/process via
    /// [`PerfModel::warm_programs`].
    pub fn programs(&self) -> ProgramSet {
        self.est.inner.lock().programs.clone().unwrap_or_default()
    }

    /// A clone of the model's platform (resources + cost tables).
    pub fn platform(&self) -> crate::resource::Platform {
        self.est.inner.lock().platform.clone()
    }

    /// Returns the estimator to its just-constructed state over
    /// `platform`, keeping configuration knobs and discarding all run
    /// state. Used by [`crate::Session::reset`].
    pub(crate) fn reset_estimator(&self, platform: crate::resource::Platform) {
        self.est.reset(platform);
    }

    /// Snapshot of the hot-path counters: fast-path charges, site-cache
    /// hits/misses, DFG arena reuses and warm-program accounting. Cheap
    /// (one lock, six loads).
    pub fn hot_stats(&self) -> EstHotStats {
        let inner = self.est.inner.lock();
        EstHotStats {
            fast_charges: inner.fast_charges,
            site_hits: inner.site_hits,
            site_misses: inner.site_misses,
            dfg_arena_reuse: inner.dfg_arena_reuse,
            prog_warm_hits: inner.prog_warm_hits,
            prog_rejects: inner.prog_rejects,
        }
    }

    /// Attaches a [`Recorder`]: every segment execution's estimated
    /// cycles are captured per process, in execution order (one
    /// `Vec::push` per segment boundary). After the run the recorder
    /// hands each process's trace back as a [`crate::Replay`] for
    /// [`PerfModel::spawn_replaying`] — the memoization that lets a
    /// design-space exploration or a simulation service skip
    /// re-estimating segments whose annotation cannot differ between
    /// runs. Off unless a recorder is attached.
    pub fn recorder(&self) -> Recorder {
        Recorder::attach(&self.est)
    }

    /// Deprecated shim: switches segment-cost recording on without
    /// handing back the [`Recorder`].
    #[deprecated(
        since = "0.4.0",
        note = "use `PerfModel::recorder()` (or `SimConfig::record_costs()`) \
                and keep the returned `Recorder`"
    )]
    pub fn record_segment_costs(&self) {
        let _ = self.recorder();
    }

    /// Deprecated shim: the recorded per-segment cycle trace of
    /// `process`, as a bare vector.
    #[deprecated(
        since = "0.4.0",
        note = "use `Recorder::replay(process)`, which returns a `Replay` handle"
    )]
    pub fn segment_cost_trace(&self, process: &str) -> Option<Vec<f64>> {
        let inner = self.est.inner.lock();
        inner
            .procs
            .values()
            .find(|p| p.name == process)
            .map(|p| p.cost_trace.clone())
    }

    /// Spawns a process mapped to `resource` (the architectural-mapping
    /// annotation of §2). The body runs with the estimation context
    /// installed, so `G`-typed operations are charged automatically and
    /// channel accesses become segment boundaries.
    pub fn spawn<F>(
        &self,
        sim: &mut Simulator,
        name: impl Into<String>,
        resource: ResourceId,
        body: F,
    ) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        self.spawn_inner(sim, name.into(), resource, None, body)
    }

    /// Spawns a process mapped to `resource` that **replays** a
    /// previously recorded per-segment cycle trace instead of estimating
    /// live (see [`PerfModel::recorder`]).
    ///
    /// The body should execute the *plain* (un-annotated) form of the
    /// workload: operator charging is disabled, and every segment
    /// boundary pops the next entry of `replay` as the segment's cycles.
    /// Back-annotation, resource arbitration and RTOS accounting behave
    /// exactly as in a live run, so the strict-timed schedule is
    /// bit-identical — provided the body performs the same sequence of
    /// channel accesses and waits as the recorded run. See
    /// [`crate::Replay`] for the soundness conditions.
    ///
    /// # Panics
    ///
    /// The spawned process panics (surfacing as
    /// [`scperf_kernel::SimError::ProcessPanic`]) if it reaches more
    /// segment boundaries than `replay` holds.
    pub fn spawn_replaying<F>(
        &self,
        sim: &mut Simulator,
        name: impl Into<String>,
        resource: ResourceId,
        replay: Replay,
        body: F,
    ) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        self.spawn_inner(sim, name.into(), resource, Some(replay), body)
    }

    /// Deprecated shim forwarding to [`PerfModel::spawn_replaying`].
    #[deprecated(
        since = "0.4.0",
        note = "use `PerfModel::spawn_replaying` with a `Replay` handle"
    )]
    pub fn spawn_replay<F>(
        &self,
        sim: &mut Simulator,
        name: impl Into<String>,
        resource: ResourceId,
        trace: Arc<Vec<f64>>,
        body: F,
    ) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        self.spawn_inner(
            sim,
            name.into(),
            resource,
            Some(Replay::from_arc(trace)),
            body,
        )
    }

    fn spawn_inner<F>(
        &self,
        sim: &mut Simulator,
        name: String,
        resource: ResourceId,
        replay: Option<Replay>,
        body: F,
    ) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        let est = Arc::clone(&self.est);
        let reg_name = name.clone();
        let pid = sim.spawn(name, move |ctx| {
            let (kind, costs, k, rtos_cycles, legacy, memo, record_dfgs, warm) = {
                let inner = est.inner.lock();
                let r = inner.platform.resource(resource);
                (
                    r.kind,
                    tls::dense_costs(&r.costs),
                    r.k,
                    r.rtos_cycles,
                    inner.legacy_charging,
                    inner.memo_mode,
                    inner.record_dfgs,
                    inner.warm_programs.clone(),
                )
            };
            let record_dfgs =
                replay.is_none() && record_dfgs && kind == crate::resource::ResourceKind::Parallel;
            tls::install(tls::ThreadCtx {
                est: Arc::clone(&est),
                pid: ctx.pid().index(),
                resource,
                kind,
                costs,
                k,
                rtos_cycles,
                acc: 0.0,
                counts: OpCounts::new(),
                max_ready: 0.0,
                dfg: record_dfgs.then(Dfg::default),
                current_node: crate::estimator::NODE_ENTRY,
                replay: replay.map(|r| {
                    let (trace, detail) = r.into_cursor_parts();
                    tls::ReplayCursor {
                        trace,
                        detail,
                        next: 0,
                    }
                }),
                legacy,
                memo,
                progs: ProgStore::with_warm(warm),
                rec_events: Vec::new(),
                rec_depth: 0,
                dfg_spare: Vec::new(),
                cp_scratch: Vec::new(),
            });
            body(ctx);
            // The process-exit statement is a node (§2): flush the final
            // segment and back-annotate it.
            end_segment(ctx, crate::estimator::NODE_EXIT);
            if let Some(mut t) = tls::uninstall() {
                // Harvest the programs this process recorded (and its
                // warm-set accounting) into the shared estimator, so the
                // session can publish one merged set.
                let fresh = t.progs.take_fresh();
                let warm_hits = t.progs.warm_hits;
                let rejects = t.progs.rejects;
                if !fresh.is_empty() || warm_hits > 0 || rejects > 0 {
                    est.harvest_programs(fingerprint_costs(&t.costs), fresh, warm_hits, rejects);
                }
            }
        });
        self.est.register_process(pid.index(), reg_name, resource);
        pid
    }

    /// Creates an instrumented FIFO channel: both endpoints are segment
    /// boundaries for analyzed processes.
    pub fn fifo<T: Send + std::fmt::Debug + 'static>(
        &self,
        sim: &mut Simulator,
        name: impl Into<String>,
        capacity: usize,
    ) -> PFifo<T> {
        let name = name.into();
        let read_node = self.est.register_node(format!("{name}.read"));
        let write_node = self.est.register_node(format!("{name}.write"));
        PFifo {
            inner: sim.fifo(name, capacity),
            read_node,
            write_node,
        }
    }

    /// Creates an instrumented signal.
    pub fn signal<T>(&self, sim: &mut Simulator, name: impl Into<String>, initial: T) -> PSignal<T>
    where
        T: Send + Clone + PartialEq + std::fmt::Debug + 'static,
    {
        let name = name.into();
        let write_node = self.est.register_node(format!("{name}.write"));
        PSignal {
            inner: sim.signal(name, initial),
            write_node,
        }
    }

    /// Creates an instrumented rendezvous channel.
    pub fn rendezvous<T: Send + std::fmt::Debug + 'static>(
        &self,
        sim: &mut Simulator,
        name: impl Into<String>,
    ) -> PRendezvous<T> {
        let name = name.into();
        let read_node = self.est.register_node(format!("{name}.read"));
        let write_node = self.est.register_node(format!("{name}.write"));
        PRendezvous {
            inner: sim.rendezvous(name),
            read_node,
            write_node,
        }
    }

    /// Registers a capture point (§4). The returned handle is cheap to
    /// clone into process bodies.
    pub fn capture_point(&self, name: impl Into<String>) -> CapturePoint {
        let mut inner = self.est.inner.lock();
        inner.captures.push(CaptureList {
            name: name.into(),
            events: Vec::new(),
        });
        CapturePoint {
            est: Arc::clone(&self.est),
            index: inner.captures.len() - 1,
        }
    }

    /// The recorded capture lists (clone; call after `sim.run()`).
    pub fn captures(&self) -> Vec<CaptureList> {
        self.est.inner.lock().captures.clone()
    }

    /// Builds the full performance report (call after `sim.run()`).
    pub fn report(&self) -> Report {
        Report::build(&self.est.inner.lock())
    }

    /// Builds the utilization & contention attribution for a run whose
    /// total simulated time is `total_time` (usually `sim.now()` after
    /// the run). Returns `None` when attribution was not enabled. The
    /// channel section is left empty here — `Session::report` fills it
    /// from the kernel's channel accounting.
    pub fn utilization_report(&self, total_time: Time) -> Option<crate::UtilizationReport> {
        let inner = self.est.inner.lock();
        inner
            .attribution
            .then(|| Report::build_utilization(&inner, total_time))
    }

    /// Snapshots the estimator's internals as metrics: segments closed,
    /// annotated operation totals (overall and per class), estimated
    /// cycles/time and per-resource busy/RTOS time. Complements
    /// [`Simulator::metrics`]; merge the two snapshots for a full
    /// picture of one run.
    pub fn metrics_snapshot(&self) -> scperf_obs::MetricsSnapshot {
        let inner = self.est.inner.lock();
        let mut m = scperf_obs::MetricsSnapshot::new();
        m.set_counter("est.processes", inner.procs.len() as u64);
        let mut segments = 0_u64;
        let mut ops = crate::cost::OpCounts::new();
        let mut cycles = 0.0;
        let mut time = Time::ZERO;
        let mut rtos = Time::ZERO;
        for rec in inner.procs.values() {
            segments += rec.segment_executions;
            ops.merge(&rec.counts);
            cycles += rec.total_cycles;
            time += rec.total_time;
            rtos += rec.rtos_time;
        }
        m.set_counter("est.segments_closed", segments);
        m.set_counter("est.annotated_ops", ops.total());
        for op in crate::cost::ALL_OPS {
            let n = ops.get(op);
            if n > 0 {
                m.set_counter(format!("est.ops.{op:?}"), n);
            }
        }
        m.set_gauge("est.total_cycles", cycles);
        m.set_gauge("est.total_time_ns", time.as_ns_f64());
        m.set_gauge("est.rtos_time_ns", rtos.as_ns_f64());
        m.set_counter("est.charge.fast", inner.fast_charges);
        m.set_counter("est.site_cache.hit", inner.site_hits);
        m.set_counter("est.site_cache.miss", inner.site_misses);
        m.set_counter("est.dfg.arena_reuse", inner.dfg_arena_reuse);
        // Cost-program namespace: hits/misses mirror the site cache (a
        // replayed region IS a compiled-program apply), plus the
        // cross-process warm-set accounting.
        m.set_counter("est.prog.hits", inner.site_hits);
        m.set_counter("est.prog.misses", inner.site_misses);
        m.set_counter("est.prog.warm_hits", inner.prog_warm_hits);
        m.set_counter("est.prog.rejects", inner.prog_rejects);
        m.set_counter(
            "est.prog.compiled",
            inner.programs.as_ref().map_or(0, |p| p.len()) as u64,
        );
        for (id, r) in inner.platform.iter() {
            m.set_gauge(
                format!("resource.{}.busy_ns", r.name),
                inner.busy_total[id.index()].as_ns_f64(),
            );
            m.set_gauge(
                format!("resource.{}.rtos_ns", r.name),
                inner.rtos_total[id.index()].as_ns_f64(),
            );
            if inner.attribution {
                // Counter (integer ns) variants so multi-run folds sum.
                m.set_counter(
                    format!("est.res.{}.busy_ns", r.name),
                    inner.busy_total[id.index()].as_ps() / 1_000,
                );
                m.set_counter(
                    format!("est.res.{}.contention_ns", r.name),
                    inner.contention_total[id.index()].as_ps() / 1_000,
                );
                m.set_counter(
                    format!("est.res.{}.waits", r.name),
                    inner.arbitration_waits[id.index()],
                );
            }
        }
        m
    }

    /// Builds a Chrome `trace_event` document from the recorded
    /// instantaneous samples: one track per process, one complete span
    /// per segment execution, positioned at the segment's strict-timed
    /// simulation interval. Requires [`PerfModel::record_instantaneous`]
    /// before the run; load the written JSON in Perfetto or
    /// `chrome://tracing`.
    pub fn chrome_trace(&self) -> scperf_obs::chrome::ChromeTrace {
        let inner = self.est.inner.lock();
        let mut t = scperf_obs::chrome::ChromeTrace::new();
        // Own process group so a merge with the kernel trace (pid 1)
        // cannot put estimator spans on a kernel instant track.
        t.set_pid(2);
        t.process_name("estimation (segment spans)");
        let node = |n: u32| {
            inner
                .nodes
                .get(n as usize)
                .cloned()
                .unwrap_or_else(|| format!("node{n}"))
        };
        for (track, rec) in inner.procs.values().enumerate() {
            let tid = track as u64 + 1;
            let res = inner.platform.resource(rec.resource);
            t.thread_name(tid, format!("{} @ {}", rec.name, res.name));
            for s in &rec.instantaneous {
                let name = format!("{}→{}", node(s.segment.0), node(s.segment.1));
                t.complete(
                    tid,
                    name,
                    s.at.as_ps() as f64 / 1e6,
                    s.dur.as_ps() as f64 / 1e6,
                )
                .arg("cycles", s.cycles);
            }
        }
        t
    }

    /// The label of a node id (used with
    /// [`crate::ProcessReport::instantaneous_csv`]).
    pub fn node_label(&self, node: u32) -> String {
        let inner = self.est.inner.lock();
        inner
            .nodes
            .get(node as usize)
            .cloned()
            .unwrap_or_else(|| format!("node{node}"))
    }

    /// The recorded DFG of a hardware segment, identified by process name
    /// and `(from, to)` node labels. Requires [`PerfModel::record_dfgs`].
    pub fn dfg(&self, process: &str, from: &str, to: &str) -> Option<Dfg> {
        let inner = self.est.inner.lock();
        let from = inner.nodes.iter().position(|n| n == from)? as u32;
        let to = inner.nodes.iter().position(|n| n == to)? as u32;
        inner
            .procs
            .values()
            .find(|p| p.name == process)?
            .dfgs
            .get(&(from, to))
            .cloned()
    }

    /// All recorded DFGs of a process, keyed by `(from, to)` node labels.
    pub fn dfgs(&self, process: &str) -> Vec<((String, String), Dfg)> {
        let inner = self.est.inner.lock();
        let Some(rec) = inner.procs.values().find(|p| p.name == process) else {
            return Vec::new();
        };
        rec.dfgs
            .iter()
            .map(|(&(f, t), dfg)| {
                (
                    (
                        inner.nodes[f as usize].clone(),
                        inner.nodes[t as usize].clone(),
                    ),
                    dfg.clone(),
                )
            })
            .collect()
    }
}

impl std::fmt::Debug for PerfModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.est.inner.lock();
        f.debug_struct("PerfModel")
            .field("mode", &inner.mode)
            .field("resources", &inner.platform.len())
            .field("processes", &inner.procs.len())
            .finish()
    }
}

/// A timed wait that is also a segment boundary (§2: timing `wait`
/// statements are nodes). For analyzed processes the preceding segment is
/// back-annotated first, then the explicit `delay` elapses; for
/// un-instrumented processes this is a plain `ctx.wait(delay)`.
pub fn timed_wait(ctx: &mut ProcCtx, delay: Time) {
    end_segment(ctx, NODE_WAIT);
    ctx.wait(delay);
}

/// Like [`timed_wait`] but with a distinct node label, so different wait
/// sites appear as different nodes in the process graph.
pub fn timed_wait_labeled(ctx: &mut ProcCtx, delay: Time, label: &str) {
    let node = match tls::with(|t| Arc::clone(&t.est)) {
        Some(est) => {
            // Node ids are handed out first-come-first-served; fence so
            // first registrations happen in canonical pid order under
            // parallel evaluation.
            ctx.par_fence();
            est.register_node(format!("wait:{label}"))
        }
        None => NODE_WAIT,
    };
    end_segment(ctx, node);
    ctx.wait(delay);
}

/// An instrumented FIFO: a [`Fifo`] whose endpoints are segment boundaries.
#[derive(Debug)]
pub struct PFifo<T> {
    inner: Fifo<T>,
    read_node: u32,
    write_node: u32,
}

impl<T> Clone for PFifo<T> {
    fn clone(&self) -> PFifo<T> {
        PFifo {
            inner: self.inner.clone(),
            read_node: self.read_node,
            write_node: self.write_node,
        }
    }
}

impl<T: Send + std::fmt::Debug + 'static> PFifo<T> {
    /// Blocking read; ends the current segment first.
    pub fn read(&self, ctx: &mut ProcCtx) -> T {
        end_segment(ctx, self.read_node);
        self.inner.read(ctx)
    }

    /// Blocking write; ends the current segment first.
    pub fn write(&self, ctx: &mut ProcCtx, value: T) {
        end_segment(ctx, self.write_node);
        self.inner.write(ctx, value);
    }

    /// The underlying kernel channel.
    pub fn raw(&self) -> &Fifo<T> {
        &self.inner
    }
}

/// An instrumented signal. Writes are segment boundaries; reads are not
/// (reading a signal is a plain expression, not a synchronization point
/// under SR semantics, and never blocks).
#[derive(Debug)]
pub struct PSignal<T> {
    inner: Signal<T>,
    write_node: u32,
}

impl<T> Clone for PSignal<T> {
    fn clone(&self) -> PSignal<T> {
        PSignal {
            inner: self.inner.clone(),
            write_node: self.write_node,
        }
    }
}

impl<T: Send + Clone + PartialEq + std::fmt::Debug + 'static> PSignal<T> {
    /// Reads the committed value (never blocks, not a segment boundary).
    pub fn read(&self) -> T {
        self.inner.read()
    }

    /// Writes the signal; ends the current segment first.
    pub fn write(&self, ctx: &mut ProcCtx, value: T) {
        end_segment(ctx, self.write_node);
        self.inner.write(ctx, value);
    }

    /// The underlying kernel signal.
    pub fn raw(&self) -> &Signal<T> {
        &self.inner
    }
}

/// An instrumented rendezvous channel.
#[derive(Debug)]
pub struct PRendezvous<T> {
    inner: Rendezvous<T>,
    read_node: u32,
    write_node: u32,
}

impl<T> Clone for PRendezvous<T> {
    fn clone(&self) -> PRendezvous<T> {
        PRendezvous {
            inner: self.inner.clone(),
            read_node: self.read_node,
            write_node: self.write_node,
        }
    }
}

impl<T: Send + std::fmt::Debug + 'static> PRendezvous<T> {
    /// Blocking read; ends the current segment first.
    pub fn read(&self, ctx: &mut ProcCtx) -> T {
        end_segment(ctx, self.read_node);
        self.inner.read(ctx)
    }

    /// Blocking write; ends the current segment first.
    pub fn write(&self, ctx: &mut ProcCtx, value: T) {
        end_segment(ctx, self.write_node);
        self.inner.write(ctx, value);
    }

    /// The underlying kernel channel.
    pub fn raw(&self) -> &Rendezvous<T> {
        &self.inner
    }
}
