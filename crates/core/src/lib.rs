//! # scperf-core — system-level performance analysis for SystemC-like models
//!
//! Reproduction of the estimation library of *Posadas, Herrera, Sánchez,
//! Villar, Blasco: "System-Level Performance Analysis in SystemC" (DATE
//! 2004)*, on top of the [`scperf_kernel`] discrete-event kernel.
//!
//! The library provides dynamic timing estimation of a system-level model
//! **while it simulates**, with no change to the model's structure:
//!
//! 1. **Process segmentation** (§2): processes interact only through
//!    channels and timed waits; the code between two such *nodes* is a
//!    *segment*, executed atomically. The channel wrappers ([`PFifo`],
//!    [`PSignal`], [`PRendezvous`]) and [`timed_wait`] mark the nodes
//!    automatically.
//! 2. **Operator-overloading estimation** (§3): writing the algorithm
//!    against the annotated [`G`] types ([`g_i32`], [`g_f64`], …),
//!    [`GArr`] arrays and the [`g_if!`]/[`g_while!`]/[`g_for!`]/[`g_call!`]
//!    macros makes every elementary operation charge its per-resource
//!    [`CostTable`] cost as it executes. On parallel (HW) resources the
//!    library tracks both extremes — critical path `T_min` and single-ALU
//!    `T_max` — and annotates `T_min + (T_max − T_min)·k`.
//! 3. **Strict-timed back-annotation** (§4): in [`Mode::StrictTimed`] each
//!    process sleeps for its segment's estimated time; processes mapped to
//!    the same sequential resource serialize through the arbitration
//!    protocol, and RTOS overhead is charged at every node.
//! 4. **Reporting** (§4): automatic totals per process and per resource
//!    ([`PerfModel::report`]), optional instantaneous per-segment samples,
//!    process graphs ([`ProcessGraph`]), and user-inserted
//!    [`CapturePoint`]s with CSV/Matlab export.
//! 5. **Verification** (§6): [`determinism::check`] diffs untimed vs
//!    strict-timed behaviour to flag non-deterministic specifications.
//!
//! # Example
//!
//! ```
//! use scperf_core::{g_i64, CostTable, Mode, PerfModel, Platform};
//! use scperf_kernel::{Simulator, Time};
//!
//! // Platform: one 100 MHz CPU with a vendor cost table.
//! let mut platform = Platform::new();
//! let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 120.0);
//!
//! let mut sim = Simulator::new();
//! let model = PerfModel::new(platform, Mode::StrictTimed);
//! let out = model.fifo::<i64>(&mut sim, "out", 8);
//!
//! let tx = out.clone();
//! model.spawn(&mut sim, "dot", cpu, move |ctx| {
//!     let a = [1_i64, 2, 3, 4];
//!     let b = [4_i64, 3, 2, 1];
//!     let mut acc = g_i64(0);
//!     for i in 0..4 {
//!         let x = scperf_core::G::raw(a[i]);
//!         let y = scperf_core::G::raw(b[i]);
//!         acc = acc + x * y;
//!     }
//!     tx.write(ctx, acc.get());
//! });
//! sim.spawn("sink", move |ctx| {
//!     assert_eq!(out.read(ctx), 20);
//! });
//! sim.run()?;
//!
//! let report = model.report();
//! let dot = report.process("dot").unwrap();
//! assert!(dot.total_cycles > 0.0);
//! assert!(!dot.total_time.is_zero());
//! # Ok::<(), scperf_kernel::SimError>(())
//! ```

#![deny(missing_docs)]

mod capture;
mod cost;
pub mod determinism;
mod estimator;
mod garray;
mod gval;
pub mod hw;
mod macros;
mod model;
mod pool;
mod prog;
pub mod rate;
mod recorder;
mod report;
mod resource;
mod session;
mod site;
mod tls;

pub use capture::{CaptureEvent, CaptureList, CapturePoint};
pub use cost::{CostTable, Op, OpCounts, ALL_OPS, OP_COUNT};
pub use estimator::{EstHotStats, InstSample, Mode, SegStats, NODE_ENTRY, NODE_EXIT, NODE_WAIT};
pub use garray::GArr;
pub use gval::{
    g_f32, g_f64, g_i16, g_i32, g_i64, g_u16, g_u32, g_u64, g_u8, g_usize, IndexValue, G,
};
pub use hw::{weighted_hw_cycles, Dfg, DfgNode, NO_NODE};
pub use model::{timed_wait, timed_wait_labeled, PFifo, PRendezvous, PSignal, PerfModel};
pub use pool::{
    InstanceLimits, LimitExceeded, PoolExhausted, PoolStats, PooledSession, SessionPool, Snapshot,
};
pub use prog::{table_fingerprint, CostProgram, Instr, ProgDecodeError, ProgramSet};
pub use recorder::{Recorder, Replay};
pub use report::{
    ChannelUtilization, ProcessContention, ProcessGraph, ProcessReport, Report, ResourceReport,
    ResourceUtilization, SegmentReport, UtilizationReport,
};
pub use resource::{Platform, Resource, ResourceId, ResourceKind};
pub use session::{Session, SimConfig};
pub use site::{site_enter, site_enter_loop, site_try_native, MemoMode, SegmentSite, SiteGuard};
pub use tls::{charge_branch, charge_call, charge_op};
