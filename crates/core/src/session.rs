//! The redesigned front door: a [`SimConfig`] builder describing *one
//! simulation* — kernel options, platform, mode, recording — and the
//! [`Session`] handle that owns that simulation's whole lifecycle.
//!
//! Historically every consumer hand-assembled a
//! [`Simulator`], a [`PerfModel`], trace sinks and replay plumbing
//! through scattered constructors. A `SimConfig` collects all of it in
//! one declarative value:
//!
//! ```
//! use scperf_core::{g_i64, CostTable, Mode, Platform, SimConfig};
//! use scperf_kernel::Time;
//!
//! let mut platform = Platform::new();
//! let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 100.0);
//!
//! let mut session = SimConfig::new()
//!     .platform(platform)
//!     .mode(Mode::StrictTimed)
//!     .build();
//! session.spawn("worker", cpu, |_ctx| {
//!     let mut acc = g_i64(0);
//!     for i in 0..10 {
//!         acc = acc + g_i64(i);
//!     }
//! });
//! let summary = session.run()?;
//! assert!(summary.end_time > Time::ZERO);
//! let report = session.report();
//! assert!(report.process("worker").unwrap().total_cycles > 0.0);
//! # Ok::<(), scperf_kernel::SimError>(())
//! ```
//!
//! The session is the unit a simulation *service* schedules: the
//! `scperf-serve` crate builds one `SimConfig` per accepted request,
//! runs the session on a pooled worker (stepping it to enforce the
//! request's deadline) and turns the summary, report and metrics into
//! the response.

use std::sync::Arc;

use scperf_kernel::{
    HandoffKind, ProcCtx, ProcId, SimError, SimOptions, SimSummary, Simulator, Time, TraceMode,
};
use scperf_obs::{MetricsSnapshot, TraceSink, TraceTable};

use crate::capture::{CaptureList, CapturePoint};
use crate::estimator::Mode;
use crate::model::{PFifo, PRendezvous, PSignal, PerfModel};
use crate::prog::ProgramSet;
use crate::recorder::{Recorder, Replay};
use crate::report::Report;
use crate::resource::{Platform, ResourceId};
use crate::site::MemoMode;

/// Declarative configuration of one simulation: the kernel half
/// (handoff protocol, trace sink) plus the estimation half (platform,
/// mode, recording options). [`SimConfig::build`] turns it into a
/// [`Session`].
///
/// Defaults: empty platform, [`Mode::StrictTimed`], default handoff
/// ([`HandoffKind::default_kind`]), no tracing, no recording.
#[derive(Debug)]
pub struct SimConfig {
    options: SimOptions,
    platform: Platform,
    mode: Mode,
    record_instantaneous: bool,
    record_dfgs: bool,
    record_costs: bool,
    legacy_charging: bool,
    site_memo: MemoMode,
    run_limit: Option<Time>,
    attribution: bool,
    tracing_mode: TraceMode,
    programs: Option<Arc<ProgramSet>>,
}

/// The plain (clonable) configuration knobs a built [`Session`] keeps,
/// so [`Session::reset`] can restore them on a pooled slot and a
/// [`crate::Snapshot`] can fork sessions with the same configuration.
/// Custom trace sinks ([`SimConfig::trace_sink`]) are the one knob that
/// cannot be retained: a reset drops the installed sink.
#[derive(Debug, Clone)]
pub(crate) struct SessionKnobs {
    pub(crate) mode: Mode,
    pub(crate) attribution: bool,
    pub(crate) legacy_charging: bool,
    pub(crate) site_memo: MemoMode,
    pub(crate) record_costs: bool,
    pub(crate) record_instantaneous: bool,
    pub(crate) record_dfgs: bool,
    pub(crate) tracing: TraceMode,
    pub(crate) jobs: usize,
    pub(crate) handoff: HandoffKind,
    pub(crate) run_limit: Option<Time>,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::new()
    }
}

impl SimConfig {
    /// The default configuration (see the type-level docs).
    pub fn new() -> SimConfig {
        SimConfig {
            options: SimOptions::new(),
            platform: Platform::new(),
            mode: Mode::StrictTimed,
            record_instantaneous: false,
            record_dfgs: false,
            record_costs: false,
            legacy_charging: false,
            site_memo: MemoMode::default(),
            run_limit: None,
            attribution: false,
            tracing_mode: TraceMode::Off,
            programs: None,
        }
    }

    /// Warm-starts segment-site memoization from a previously harvested
    /// [`ProgramSet`] (see [`Session::programs`]): named `g_loop!` /
    /// `g_site!` regions replay their compiled cost programs on *first*
    /// execution instead of recording live. The set's
    /// [`table_fingerprint`](crate::table_fingerprint) is validated
    /// against each process's cost table when the process starts; on
    /// mismatch the warm set is dropped for that process (counted in
    /// `est.prog.rejects`) and recording proceeds live.
    pub fn program_set(mut self, set: Arc<ProgramSet>) -> SimConfig {
        self.programs = Some(set);
        self
    }

    /// Enables utilization & contention attribution: kernel scheduling
    /// accounting (`kernel.sched.*`, per-channel depth/blocked time)
    /// plus estimator resource-arbitration accounting (`est.res.*`, the
    /// [`crate::UtilizationReport`] section of [`Session::report`]).
    /// Measurement-only — simulated results are bit-identical whether
    /// attribution is on or off. Off by default.
    pub fn attribution(mut self, enable: bool) -> SimConfig {
        self.attribution = enable;
        self
    }

    /// Sets the platform (resources + cost tables) the model maps onto.
    pub fn platform(mut self, platform: Platform) -> SimConfig {
        self.platform = platform;
        self
    }

    /// Sets the estimation mode (default [`Mode::StrictTimed`]).
    pub fn mode(mut self, mode: Mode) -> SimConfig {
        self.mode = mode;
        self
    }

    /// Selects the scheduler↔process handoff protocol (replaces the
    /// deprecated `Simulator::with_handoff`).
    pub fn handoff(mut self, kind: HandoffKind) -> SimConfig {
        self.options = self.options.handoff(kind);
        self
    }

    /// Selects the kernel trace recording mode (replaces
    /// `Simulator::enable_tracing` / `enable_tracing_ring`).
    pub fn tracing(mut self, mode: TraceMode) -> SimConfig {
        self.tracing_mode = mode;
        self.options = self.options.tracing(mode);
        self
    }

    /// Installs a custom kernel [`TraceSink`] (replaces
    /// `Simulator::set_trace_sink` wiring at elaboration time).
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>) -> SimConfig {
        self.options = self.options.trace_sink(sink);
        self
    }

    /// Records one `(time, cycles)` sample per segment execution (the
    /// paper's "instantaneous estimated parameters").
    pub fn record_instantaneous(mut self) -> SimConfig {
        self.record_instantaneous = true;
        self
    }

    /// Records the dataflow graph of each hardware segment's first
    /// execution, for export to the HLS scheduler.
    pub fn record_dfgs(mut self) -> SimConfig {
        self.record_dfgs = true;
        self
    }

    /// Attaches a segment-cost [`Recorder`] to the session at build
    /// time; fetch it afterwards with [`Session::recorder`]. The replay
    /// source side of the pair is per-process:
    /// [`Session::spawn_replaying`].
    pub fn record_costs(mut self) -> SimConfig {
        self.record_costs = true;
        self
    }

    /// Sets the parallelism of the kernel's evaluate phase (forwarded to
    /// [`SimOptions::jobs`]); `1` (the default) is the plain sequential
    /// kernel. Results are bit-identical for any value — see
    /// `docs/PARALLELISM.md` for the determinism contract.
    ///
    /// [`SimConfig::legacy_charging`] forces `jobs = 1` at build time:
    /// the legacy charging path mutates per-operator state in execution
    /// order, which only the sequential kernel reproduces.
    pub fn jobs(mut self, jobs: usize) -> SimConfig {
        self.options = self.options.jobs(jobs);
        self
    }

    /// Routes operator charging through the legacy `RefCell`-per-op path
    /// instead of the flat thread-local fast path. Bit-identical
    /// results, strictly slower — the measurable baseline of
    /// `estimator_bench` and a diagnostic escape hatch.
    pub fn legacy_charging(mut self, enable: bool) -> SimConfig {
        self.legacy_charging = enable;
        self
    }

    /// Sets the segment-site memoization policy (default
    /// [`MemoMode::Replay`]); see [`crate::g_loop!`] for what a site is
    /// and when memoization engages.
    pub fn site_memo(mut self, mode: MemoMode) -> SimConfig {
        self.site_memo = mode;
        self
    }

    /// Caps simulation time: [`Session::run`] stops at `limit` (with
    /// [`scperf_kernel::StopReason::TimeLimit`]) instead of running to
    /// event exhaustion.
    pub fn run_limit(mut self, limit: Time) -> SimConfig {
        self.run_limit = Some(limit);
        self
    }

    /// Builds the [`Session`]: simulator plus estimation model, wired
    /// per this configuration.
    pub fn build(self) -> Session {
        let mut options = self.options.attribution(self.attribution);
        if self.legacy_charging {
            // Legacy charging is order-sensitive; only the sequential
            // kernel reproduces its execution order.
            options = options.jobs(1);
        }
        let sim = Simulator::with_options(options);
        let model = PerfModel::new(self.platform, self.mode);
        model.attribution(self.attribution);
        if self.record_instantaneous {
            model.record_instantaneous();
        }
        if self.record_dfgs {
            model.record_dfgs();
        }
        model.legacy_charging(self.legacy_charging);
        model.site_memo(self.site_memo);
        if let Some(set) = self.programs {
            model.warm_programs(set);
        }
        let recorder = self.record_costs.then(|| model.recorder());
        let knobs = SessionKnobs {
            mode: self.mode,
            attribution: self.attribution,
            legacy_charging: self.legacy_charging,
            site_memo: self.site_memo,
            record_costs: self.record_costs,
            record_instantaneous: self.record_instantaneous,
            record_dfgs: self.record_dfgs,
            tracing: self.tracing_mode,
            jobs: sim.jobs(),
            handoff: sim.handoff_kind(),
            run_limit: self.run_limit,
        };
        Session {
            sim,
            model,
            recorder,
            run_limit: self.run_limit,
            knobs,
        }
    }
}

/// One simulation's lifecycle, owned end to end: elaboration (spawning
/// processes, creating channels), execution, and result extraction
/// (summary, report, metrics, captured traces).
///
/// Built by [`SimConfig::build`]. The underlying [`Simulator`] and
/// [`PerfModel`] remain reachable ([`Session::sim`],
/// [`Session::model`]) for testbench-level pieces such as raw kernel
/// channels and events.
#[derive(Debug)]
pub struct Session {
    sim: Simulator,
    model: PerfModel,
    recorder: Option<Recorder>,
    run_limit: Option<Time>,
    knobs: SessionKnobs,
}

impl Session {
    /// Spawns an analyzed process mapped to `resource`
    /// (see [`PerfModel::spawn`]).
    pub fn spawn<F>(&mut self, name: impl Into<String>, resource: ResourceId, body: F) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        self.model.spawn(&mut self.sim, name, resource, body)
    }

    /// Spawns a process that replays a recorded segment-cost trace
    /// instead of estimating live (see [`PerfModel::spawn_replaying`]).
    pub fn spawn_replaying<F>(
        &mut self,
        name: impl Into<String>,
        resource: ResourceId,
        replay: Replay,
        body: F,
    ) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        self.model
            .spawn_replaying(&mut self.sim, name, resource, replay, body)
    }

    /// Spawns an un-analyzed (environment/testbench) process directly on
    /// the kernel: no resource mapping, no charging.
    pub fn spawn_untimed<F>(&mut self, name: impl Into<String>, body: F) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        self.sim.spawn(name, body)
    }

    /// Creates an instrumented FIFO channel (both endpoints are segment
    /// boundaries for analyzed processes).
    pub fn fifo<T: Send + std::fmt::Debug + 'static>(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
    ) -> PFifo<T> {
        self.model.fifo(&mut self.sim, name, capacity)
    }

    /// Creates an instrumented signal.
    pub fn signal<T>(&mut self, name: impl Into<String>, initial: T) -> PSignal<T>
    where
        T: Send + Clone + PartialEq + std::fmt::Debug + 'static,
    {
        self.model.signal(&mut self.sim, name, initial)
    }

    /// Creates an instrumented rendezvous channel.
    pub fn rendezvous<T: Send + std::fmt::Debug + 'static>(
        &mut self,
        name: impl Into<String>,
    ) -> PRendezvous<T> {
        self.model.rendezvous(&mut self.sim, name)
    }

    /// Registers a capture point (§4 of the paper).
    pub fn capture_point(&mut self, name: impl Into<String>) -> CapturePoint {
        self.model.capture_point(name)
    }

    /// The session's segment-cost [`Recorder`]. Attaches one on first
    /// call if [`SimConfig::record_costs`] was not set (recording only
    /// captures segments executed *after* the recorder is attached, so
    /// call this before [`Session::run`]).
    pub fn recorder(&mut self) -> Recorder {
        self.recorder
            .get_or_insert_with(|| self.model.recorder())
            .clone()
    }

    /// Runs the simulation to event exhaustion, or to the configured
    /// [`SimConfig::run_limit`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanic`] if any process body panics.
    pub fn run(&mut self) -> Result<SimSummary, SimError> {
        match self.run_limit {
            Some(limit) => self.sim.run_until(limit),
            None => self.sim.run(),
        }
    }

    /// Runs until no events remain or simulation time would exceed
    /// `limit`; can be called repeatedly with growing limits to *step*
    /// a simulation (the mechanism `scperf-serve` uses to check request
    /// deadlines mid-run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanic`] if any process body panics.
    pub fn run_until(&mut self, limit: Time) -> Result<SimSummary, SimError> {
        self.sim.run_until(limit)
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Builds the performance report (call after [`Session::run`]).
    /// When attribution is on ([`SimConfig::attribution`]) the report
    /// carries a [`crate::UtilizationReport`]: per-resource busy% and
    /// contention%, per-process arbitration waits, and the kernel's
    /// per-channel queue-depth/blocked-time accounting.
    pub fn report(&self) -> Report {
        let mut report = self.model.report();
        report.utilization = self.model.utilization_report(self.sim.now()).map(|mut u| {
            u.channels = self
                .sim
                .sched_stats()
                .channels
                .into_iter()
                .map(|c| crate::ChannelUtilization {
                    name: c.name,
                    max_depth: c.max_depth,
                    blocks: c.blocks,
                    blocked: c.blocked,
                })
                .collect();
            u
        });
        report
    }

    /// The recorded capture lists (call after [`Session::run`]).
    pub fn captures(&self) -> Vec<CaptureList> {
        self.model.captures()
    }

    /// The cost programs harvested from this session's processes (call
    /// after [`Session::run`]): every named `g_loop!` / `g_site!` region
    /// that compiled, keyed by stable site hash and caller/branch key.
    /// Serialize with [`ProgramSet::to_bytes`] and feed the bytes into a
    /// later [`SimConfig::program_set`] to warm-start another process —
    /// or another machine, the encoding is platform-independent.
    pub fn programs(&self) -> ProgramSet {
        self.model.programs()
    }

    /// One merged metrics snapshot: kernel counters (deltas, context
    /// switches, channel accesses, handoff latency) plus estimator
    /// counters (segments, annotated ops, busy/RTOS time).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.sim.metrics();
        m.merge(self.model.metrics_snapshot());
        m
    }

    /// Takes the recorded kernel trace as a detached
    /// [`TraceTable`]; tracing stays enabled with a fresh buffer.
    pub fn take_events(&mut self) -> TraceTable {
        self.sim.take_events()
    }

    /// Returns the session to its just-built state so a pooled slot can
    /// be reused without rebuilding: process threads are joined, kernel
    /// queues and the timer wheel are rebuilt, estimator records and
    /// capture lists are cleared, and simulation time is back at zero.
    /// Configuration (mode, jobs, handoff protocol, recording flags,
    /// attribution, run limit, tracing mode) is retained; a custom
    /// trace sink installed via [`SimConfig::trace_sink`] is the one
    /// thing that cannot be restored and is dropped. Elaborate the next
    /// scenario (spawn processes, create channels) and run again — a
    /// reset session produces bit-identical results to a freshly built
    /// one.
    pub fn reset(&mut self) {
        let platform = self.model.platform();
        self.reset_with_platform(platform);
    }

    /// [`Session::reset`] that also stamps a new [`Platform`] into the
    /// slot — the reuse path when the next scenario's resource
    /// parameters (clock, cost tables, `k`, RTOS overhead) differ from
    /// the previous one's.
    pub fn reset_with_platform(&mut self, platform: Platform) {
        self.sim.reset();
        match self.knobs.tracing {
            TraceMode::Off => {}
            TraceMode::Unbounded => self.sim.enable_tracing(),
            TraceMode::Ring(n) => self.sim.enable_tracing_ring(n),
        }
        self.model.reset_estimator(platform);
    }

    /// Captures a forkable image of this session after a recorded
    /// warmup run: the platform, the configuration knobs and every
    /// process's recorded segment-cost trace. Repeated requests for the
    /// same scenario shape then [`crate::Snapshot::fork`] (or
    /// [`crate::Snapshot::fork_into`] a pooled slot) and elaborate with
    /// the captured [`Replay`]s, skipping live estimation entirely.
    ///
    /// The session must have run with recording enabled
    /// ([`SimConfig::record_costs`], or [`Session::recorder`] called
    /// before the run) — otherwise the captured traces are empty and
    /// replaying them panics at the first segment boundary.
    pub fn snapshot(&mut self) -> crate::pool::Snapshot {
        crate::pool::Snapshot::capture(self)
    }

    /// The retained configuration knobs (for snapshot/fork).
    pub(crate) fn knobs(&self) -> &SessionKnobs {
        &self.knobs
    }

    /// The underlying kernel simulator, for testbench-level pieces
    /// (raw channels, events, custom stepping).
    pub fn sim(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The underlying estimation model (reports, DFGs, Chrome traces).
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// Simulator and model together — the shape workload elaboration
    /// helpers such as `scperf_workloads::vocoder::pipeline::build`
    /// take.
    pub fn parts_mut(&mut self) -> (&mut Simulator, &PerfModel) {
        (&mut self.sim, &self.model)
    }

    /// Decomposes the session into its parts.
    pub fn into_parts(self) -> (Simulator, PerfModel) {
        (self.sim, self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTable;
    use crate::gval::g_i64;

    fn one_cpu() -> (Platform, ResourceId) {
        let mut p = Platform::new();
        let cpu = p.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 50.0);
        (p, cpu)
    }

    #[test]
    fn session_runs_and_reports() {
        let (platform, cpu) = one_cpu();
        let mut session = SimConfig::new().platform(platform).build();
        let ch = session.fifo::<i64>("out", 2);
        let tx = ch.clone();
        session.spawn("worker", cpu, move |ctx| {
            let mut acc = g_i64(0);
            for i in 0..5 {
                acc = acc + g_i64(i);
            }
            tx.write(ctx, acc.get());
        });
        session.spawn_untimed("sink", move |ctx| {
            assert_eq!(ch.read(ctx), 10);
        });
        let summary = session.run().unwrap();
        assert!(summary.end_time > Time::ZERO);
        assert!(session.report().process("worker").unwrap().total_cycles > 0.0);
        let metrics = session.metrics();
        assert!(metrics.counter("kernel.delta_cycles").is_some());
        assert_eq!(metrics.counter("est.processes"), Some(1));
    }

    #[test]
    fn recorded_dfgs_are_sealed_before_reporting() {
        let mut platform = Platform::new();
        let hw = platform.parallel("hw", Time::ns(10), CostTable::asic_hw(), 0.5);
        let mut session = SimConfig::new().platform(platform).record_dfgs().build();
        session.spawn("w", hw, |_ctx| {
            let mut acc = g_i64(0);
            for i in 0..16 {
                acc = acc + g_i64(i) * g_i64(2);
            }
            std::hint::black_box(acc.get());
        });
        session.run().unwrap();
        let dfgs = session.model().dfgs("w");
        assert!(!dfgs.is_empty(), "hw process records a graph");
        // The graphs were sealed when their segments were taken:
        // rendering reports and querying timings must not trigger a
        // single critical-path rescan on this thread.
        let before = crate::hw::dfg_time_computations();
        let report = session.report();
        assert!(report.process("w").unwrap().total_cycles > 0.0);
        for (_, dfg) in &dfgs {
            assert!(dfg.critical_path() <= dfg.sequential_cycles());
        }
        assert_eq!(
            crate::hw::dfg_time_computations(),
            before,
            "report/query path recomputed a sealed DFG"
        );
    }

    #[test]
    fn run_limit_caps_the_run() {
        let (platform, cpu) = one_cpu();
        let mut session = SimConfig::new()
            .platform(platform)
            .run_limit(Time::ns(7))
            .build();
        session.spawn("p", cpu, |ctx| {
            crate::model::timed_wait(ctx, Time::us(1));
        });
        let summary = session.run().unwrap();
        assert_eq!(summary.end_time, Time::ns(7));
        assert_eq!(summary.reason, scperf_kernel::StopReason::TimeLimit);
    }

    #[test]
    fn record_and_replay_round_trip_is_bit_identical() {
        let (platform, cpu) = one_cpu();
        let mut session = SimConfig::new()
            .platform(platform.clone())
            .record_costs()
            .build();
        session.spawn("w", cpu, |_ctx| {
            let mut acc = g_i64(0);
            for i in 0..32 {
                acc = acc + g_i64(i) * g_i64(3);
            }
        });
        let live = session.run().unwrap();
        let replay = session.recorder().replay("w").unwrap();
        assert!(!replay.is_empty());

        let mut session = SimConfig::new().platform(platform).build();
        session.spawn_replaying("w", cpu, replay, |_ctx| {
            // Plain body: no annotation, same channel/wait sequence.
        });
        let replayed = session.run().unwrap();
        assert_eq!(replayed.end_time, live.end_time);
    }

    #[test]
    fn estimate_only_mode_stays_untimed() {
        let (platform, cpu) = one_cpu();
        let mut session = SimConfig::new()
            .platform(platform)
            .mode(Mode::EstimateOnly)
            .build();
        session.spawn("w", cpu, |_ctx| {
            let mut acc = g_i64(0);
            for i in 0..4 {
                acc = acc + g_i64(i);
            }
        });
        let summary = session.run().unwrap();
        assert_eq!(summary.end_time, Time::ZERO);
        assert!(session.report().process("w").unwrap().total_cycles > 0.0);
    }

    #[test]
    fn attribution_surfaces_utilization_and_stays_bit_identical() {
        let run = |attr: bool| {
            let (platform, cpu) = one_cpu();
            let mut session = SimConfig::new()
                .platform(platform)
                .attribution(attr)
                .build();
            let ch = session.fifo::<i64>("link", 1);
            let tx = ch.clone();
            // Two workers sharing cpu0: the second queues behind the
            // first at every segment boundary.
            session.spawn("wa", cpu, move |ctx| {
                for i in 0..6 {
                    let mut acc = g_i64(0);
                    for j in 0..8 {
                        acc = acc + g_i64(i * j);
                    }
                    tx.write(ctx, acc.get());
                }
            });
            session.spawn("wb", cpu, move |ctx| {
                for _ in 0..6 {
                    let _ = ch.read(ctx);
                }
            });
            let summary = session.run().unwrap();
            (summary, session.report())
        };
        let (s_on, r_on) = run(true);
        let (s_off, r_off) = run(false);
        assert_eq!(s_on, s_off, "attribution must not change the schedule");
        assert_eq!(r_off.utilization, None);

        // Everything except the utilization section matches the
        // attribution-off report bit for bit.
        let mut stripped = r_on.clone();
        stripped.utilization = None;
        assert_eq!(stripped, r_off);

        let u = r_on.utilization.expect("attribution report present");
        assert_eq!(u.total_time, s_on.end_time);
        let bottleneck = u.bottleneck().expect("sequential resource");
        assert_eq!(bottleneck.name, "cpu0");
        assert!(bottleneck.busy_pct > 0.0);
        assert!(
            bottleneck.contention_pct > 0.0,
            "two processes on one cpu must contend: {bottleneck:?}"
        );
        assert!(u.processes.iter().any(|p| p.wait > Time::ZERO));
        let link = u.channels.iter().find(|c| c.name == "link").unwrap();
        assert_eq!(link.max_depth, 1);

        // The metrics surface gains est.res.* counters only when on.
        let (platform, cpu) = one_cpu();
        let mut session = SimConfig::new()
            .platform(platform)
            .attribution(true)
            .build();
        session.spawn("w", cpu, |_ctx| {
            let _ = g_i64(1) + g_i64(2);
        });
        session.run().unwrap();
        let m = session.metrics();
        assert!(m.counter("est.res.cpu0.busy_ns").is_some());
        assert!(m.counter("est.res.cpu0.contention_ns").is_some());
        assert!(m.counter("kernel.sched.w.activations").is_some());
    }

    #[test]
    fn tracing_mode_threads_through_to_the_kernel() {
        let (platform, cpu) = one_cpu();
        let mut session = SimConfig::new()
            .platform(platform)
            .tracing(TraceMode::Unbounded)
            .build();
        session.spawn("w", cpu, |ctx| {
            ctx.emit_trace("mark", "1");
        });
        session.run().unwrap();
        let table = session.take_events();
        assert!(!table.events.is_empty());
    }
}
