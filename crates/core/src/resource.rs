//! The platform model: resources and the architectural mapping.
//!
//! §2 of the paper distinguishes three kinds of resources a process can be
//! mapped to during architectural mapping: **parallel** resources (HW),
//! **sequential** resources (SW processors, where at most one process
//! executes at a time and an RTOS arbitrates), and **environment**
//! components (virtual components and testbenches, which are not analyzed).

use scperf_kernel::Time;

use crate::cost::CostTable;

/// The three resource classes of §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A software processor: segments of all mapped processes execute
    /// sequentially, arbitrated at segment boundaries, with RTOS overhead
    /// charged at every channel access and timed wait.
    Sequential,
    /// A hardware resource: mapped processes run truly in parallel; segment
    /// times interpolate between the critical-path (best) and single-ALU
    /// (worst) implementation extremes via the `k` factor.
    Parallel,
    /// Environment / virtual component: executes in zero simulated time and
    /// is excluded from performance analysis.
    Environment,
}

/// Identifies a resource within one [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The resource's index in declaration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One platform resource.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name ("cpu0", "asic", …).
    pub name: String,
    /// Sequential (SW), parallel (HW) or environment.
    pub kind: ResourceKind,
    /// Clock period.
    pub clock: Time,
    /// Per-operation cost table, in cycles of this resource's clock.
    pub costs: CostTable,
    /// HW time-area weight of §3: the annotated segment time is
    /// `T_min + (T_max − T_min)·k`. `k = 0` favours performance (critical
    /// path, maximal area), `k = 1` favours cost (single ALU). Ignored for
    /// sequential resources.
    pub k: f64,
    /// RTOS overhead in cycles, charged at every channel access or timed
    /// wait executed by a process mapped to this resource (sequential
    /// resources only).
    pub rtos_cycles: f64,
}

impl Resource {
    /// Converts a fractional cycle count on this resource into simulated
    /// time using the resource clock.
    pub fn cycles_to_time(&self, cycles: f64) -> Time {
        Time::from_ps_f64(cycles * self.clock.as_ps() as f64)
    }
}

/// A complete platform: the set of resources processes can be mapped to.
///
/// # Examples
///
/// ```
/// use scperf_core::{CostTable, Platform, ResourceKind};
/// use scperf_kernel::Time;
///
/// let mut platform = Platform::new();
/// let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 80.0);
/// let hw = platform.parallel("fir_asic", Time::ns(10), CostTable::asic_hw(), 0.0);
/// assert_eq!(platform.resource(cpu).name, "cpu0");
/// assert_eq!(platform.resource(hw).kind, ResourceKind::Parallel);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Platform {
    resources: Vec<Resource>,
}

impl Platform {
    /// An empty platform.
    pub fn new() -> Platform {
        Platform::default()
    }

    /// Adds a sequential (SW) resource with the given clock period, cost
    /// table and RTOS overhead (cycles per channel access / wait).
    pub fn sequential(
        &mut self,
        name: impl Into<String>,
        clock: Time,
        costs: CostTable,
        rtos_cycles: f64,
    ) -> ResourceId {
        self.push(Resource {
            name: name.into(),
            kind: ResourceKind::Sequential,
            clock,
            costs,
            k: 0.0,
            rtos_cycles,
        })
    }

    /// Adds a parallel (HW) resource with the given clock period, cost
    /// table and time-area weight `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `[0, 1]`.
    pub fn parallel(
        &mut self,
        name: impl Into<String>,
        clock: Time,
        costs: CostTable,
        k: f64,
    ) -> ResourceId {
        assert!((0.0..=1.0).contains(&k), "k must lie in [0, 1], got {k}");
        self.push(Resource {
            name: name.into(),
            kind: ResourceKind::Parallel,
            clock,
            costs,
            k,
            rtos_cycles: 0.0,
        })
    }

    /// Adds an environment resource (virtual components, testbenches):
    /// processes mapped to it are simulated but not analyzed or timed.
    pub fn environment(&mut self, name: impl Into<String>) -> ResourceId {
        self.push(Resource {
            name: name.into(),
            kind: ResourceKind::Environment,
            clock: Time::ns(1),
            costs: CostTable::zero(),
            k: 0.0,
            rtos_cycles: 0.0,
        })
    }

    fn push(&mut self, r: Resource) -> ResourceId {
        assert!(
            r.kind == ResourceKind::Environment || !r.clock.is_zero(),
            "resource clock period must be non-zero"
        );
        self.resources.push(r);
        ResourceId(self.resources.len() - 1)
    }

    /// The resource behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` belongs to another platform (index out of range).
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// Mutable access (e.g. to sweep `k` between runs).
    pub fn resource_mut(&mut self, id: ResourceId) -> &mut Resource {
        &mut self.resources[id.0]
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// `true` when no resources have been declared.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Iterates over `(id, resource)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &Resource)> {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut p = Platform::new();
        let a = p.sequential("cpu", Time::ns(10), CostTable::zero(), 0.0);
        let b = p.parallel("hw", Time::ns(5), CostTable::zero(), 0.5);
        let c = p.environment("tb");
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        assert_eq!(p.len(), 3);
        assert_eq!(p.resource(c).kind, ResourceKind::Environment);
    }

    #[test]
    fn cycles_to_time_uses_clock() {
        let mut p = Platform::new();
        let cpu = p.sequential("cpu", Time::ns(10), CostTable::zero(), 0.0);
        let t = p.resource(cpu).cycles_to_time(75.8);
        assert_eq!(t, Time::ps(758_000));
    }

    #[test]
    #[should_panic(expected = "k must lie in [0, 1]")]
    fn k_out_of_range_rejected() {
        let mut p = Platform::new();
        let _ = p.parallel("hw", Time::ns(1), CostTable::zero(), 1.5);
    }

    #[test]
    #[should_panic(expected = "clock period must be non-zero")]
    fn zero_clock_rejected() {
        let mut p = Platform::new();
        let _ = p.sequential("cpu", Time::ZERO, CostTable::zero(), 0.0);
    }

    #[test]
    fn iter_visits_all() {
        let mut p = Platform::new();
        p.sequential("a", Time::ns(1), CostTable::zero(), 0.0);
        p.environment("b");
        let names: Vec<&str> = p.iter().map(|(_, r)| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
