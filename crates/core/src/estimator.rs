//! The estimator: segment bookkeeping, the resource-arbitration protocol
//! and strict-timed back-annotation (§4 of the paper).

use std::collections::BTreeMap;
use std::sync::Arc;

use scperf_kernel::{ProcCtx, Time};
use scperf_sync::Mutex;

use crate::cost::OpCounts;
use crate::hw::{weighted_hw_cycles, Dfg};
use crate::prog::{CostProgram, ProgramSet};
use crate::resource::{Platform, ResourceId, ResourceKind};
use crate::site::MemoMode;

/// How the library integrates with the simulation (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Collect estimates while leaving the simulation untimed: processes
    /// still execute in delta-cycle order. Useful for measuring the pure
    /// library overhead and as the reference run of the determinism check.
    EstimateOnly,
    /// Strict-timed simulation: every segment's estimated time is
    /// back-annotated (the process sleeps for it), sequential resources
    /// serialize their processes, and RTOS overhead is charged. This is the
    /// paper's headline mode.
    StrictTimed,
}

/// Node id of the implicit process-entry node.
pub const NODE_ENTRY: u32 = 0;
/// Node id of the implicit process-exit node.
pub const NODE_EXIT: u32 = 1;
/// Node id shared by unlabeled `timed_wait` statements.
pub const NODE_WAIT: u32 = 2;

/// Statistics of one segment (one `(from, to)` node pair of one process).
#[derive(Debug, Clone, PartialEq)]
pub struct SegStats {
    /// Executions of this segment.
    pub count: u64,
    /// Total estimated cycles over all executions.
    pub total_cycles: f64,
    /// Minimum cycles of a single execution.
    pub min_cycles: f64,
    /// Maximum cycles of a single execution.
    pub max_cycles: f64,
    /// Total estimated time over all executions.
    pub total_time: Time,
    /// Merged operation counts.
    pub counts: OpCounts,
    /// HW segments: last recorded T_min (critical path) in cycles.
    pub last_t_min: f64,
    /// HW segments: last recorded T_max (single-ALU) in cycles.
    pub last_t_max: f64,
}

impl SegStats {
    fn new() -> SegStats {
        SegStats {
            count: 0,
            total_cycles: 0.0,
            min_cycles: f64::INFINITY,
            max_cycles: 0.0,
            total_time: Time::ZERO,
            counts: OpCounts::new(),
            last_t_min: 0.0,
            last_t_max: 0.0,
        }
    }
}

/// An instantaneous per-segment sample (when recording is enabled):
/// the paper's "instantaneous estimated parameters for each process".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstSample {
    /// Simulation time at which the segment ended.
    pub at: Time,
    /// Segment (from, to) node pair.
    pub segment: (u32, u32),
    /// Estimated cycles of this single execution.
    pub cycles: f64,
    /// Estimated wall time of this execution including RTOS overhead
    /// (the interval the process occupies on the strict-timed axis,
    /// starting at `at`).
    pub dur: Time,
}

#[derive(Debug)]
pub(crate) struct ProcRecord {
    pub(crate) name: String,
    pub(crate) resource: ResourceId,
    pub(crate) segments: BTreeMap<(u32, u32), SegStats>,
    pub(crate) total_cycles: f64,
    pub(crate) total_time: Time,
    pub(crate) rtos_time: Time,
    pub(crate) counts: OpCounts,
    pub(crate) segment_executions: u64,
    pub(crate) instantaneous: Vec<InstSample>,
    /// First recorded DFG per segment (parallel resources with DFG
    /// recording enabled).
    pub(crate) dfgs: BTreeMap<(u32, u32), Dfg>,
    /// Per-execution cycle trace in segment-execution order, recorded
    /// when [`EstInner::record_segment_costs`] is on. Feeds the replay
    /// path ([`crate::PerfModel::spawn_replaying`]).
    pub(crate) cost_trace: Vec<f64>,
    /// Per-execution op counts and HW extremes, parallel to
    /// [`ProcRecord::cost_trace`]. Replaying them makes a replayed
    /// run's report bit-identical to the live run's.
    pub(crate) detail_trace: Vec<crate::recorder::SegDetail>,
    /// Attribution: simulated time this process spent waiting behind
    /// its sequential resource (the §4 arbitration loop).
    pub(crate) resource_wait: Time,
    /// Attribution: number of arbitration waits with non-zero duration.
    pub(crate) resource_waits: u64,
}

pub(crate) struct EstInner {
    pub(crate) platform: Platform,
    pub(crate) mode: Mode,
    /// Node label registry; ids 0..=2 are the implicit entry/exit/wait.
    pub(crate) nodes: Vec<String>,
    /// Per-process records, indexed by kernel pid.
    pub(crate) procs: BTreeMap<usize, ProcRecord>,
    /// Per-resource time the resource is occupied until (sequential only).
    pub(crate) busy_until: Vec<Time>,
    /// Accumulated busy time per resource.
    pub(crate) busy_total: Vec<Time>,
    /// Accumulated RTOS time per resource.
    pub(crate) rtos_total: Vec<Time>,
    pub(crate) record_instantaneous: bool,
    pub(crate) record_dfgs: bool,
    /// Record every segment execution's cycles into
    /// [`ProcRecord::cost_trace`] (cheap: one `Vec::push` per segment).
    pub(crate) record_segment_costs: bool,
    /// Route charging through the legacy `RefCell`-per-op path (the
    /// measurable pre-fast-path baseline; see `estimator_bench`).
    pub(crate) legacy_charging: bool,
    /// Segment-site memoization policy handed to spawned processes.
    pub(crate) memo_mode: MemoMode,
    /// Warm program set handed to spawned processes: compiled cost
    /// programs recorded by an earlier run/process/worker, replayed on
    /// local misses (see [`crate::ProgramSet`]).
    pub(crate) warm_programs: Option<Arc<ProgramSet>>,
    /// Programs recorded by this run's processes, merged for harvest
    /// (`None` until the first named-site recording lands).
    pub(crate) programs: Option<ProgramSet>,
    /// Local site misses satisfied from the warm program set
    /// (`est.prog.warm_hits`).
    pub(crate) prog_warm_hits: u64,
    /// Warm program sets rejected for a cost-table fingerprint mismatch
    /// (`est.prog.rejects`).
    pub(crate) prog_rejects: u64,
    /// Operations charged through the flat fast path (`est.charge.fast`).
    pub(crate) fast_charges: u64,
    /// Site-memo regions replayed from cache (`est.site_cache.hit`).
    pub(crate) site_hits: u64,
    /// Site-memo regions recorded on first execution
    /// (`est.site_cache.miss`).
    pub(crate) site_misses: u64,
    /// Segments whose DFG node buffer was recycled from the arena
    /// (`est.dfg.arena_reuse`).
    pub(crate) dfg_arena_reuse: u64,
    pub(crate) captures: Vec<crate::capture::CaptureList>,
    /// Attribution accounting toggle — measurement-only, never changes
    /// back-annotation results.
    pub(crate) attribution: bool,
    /// Attribution: accumulated arbitration-wait time per resource
    /// (time processes spent blocked behind the sequential resource).
    pub(crate) contention_total: Vec<Time>,
    /// Attribution: number of non-zero arbitration waits per resource.
    pub(crate) arbitration_waits: Vec<u64>,
}

/// Snapshot of the estimator hot-path counters (see
/// [`crate::PerfModel::hot_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EstHotStats {
    /// Operations charged through the flat thread-local fast path.
    pub fast_charges: u64,
    /// Segment-site regions satisfied by replaying a compiled program.
    pub site_hits: u64,
    /// Segment-site regions that recorded a fresh program.
    pub site_misses: u64,
    /// Segments whose DFG node buffer was recycled instead of allocated.
    pub dfg_arena_reuse: u64,
    /// Local site misses satisfied by compiling a warm-set program.
    pub prog_warm_hits: u64,
    /// Warm program sets rejected for a fingerprint mismatch.
    pub prog_rejects: u64,
}

/// Shared estimator state (one per [`crate::PerfModel`]).
pub(crate) struct EstimatorShared {
    pub(crate) inner: Mutex<EstInner>,
}

impl EstimatorShared {
    pub(crate) fn new(platform: Platform, mode: Mode) -> Arc<EstimatorShared> {
        let n = platform.len();
        Arc::new(EstimatorShared {
            inner: Mutex::new(EstInner {
                platform,
                mode,
                nodes: vec!["entry".into(), "exit".into(), "wait".into()],
                procs: BTreeMap::new(),
                busy_until: vec![Time::ZERO; n],
                busy_total: vec![Time::ZERO; n],
                rtos_total: vec![Time::ZERO; n],
                record_instantaneous: false,
                record_dfgs: false,
                record_segment_costs: false,
                legacy_charging: false,
                memo_mode: MemoMode::default(),
                warm_programs: None,
                programs: None,
                prog_warm_hits: 0,
                prog_rejects: 0,
                fast_charges: 0,
                site_hits: 0,
                site_misses: 0,
                dfg_arena_reuse: 0,
                captures: Vec::new(),
                attribution: false,
                contention_total: vec![Time::ZERO; n],
                arbitration_waits: vec![0; n],
            }),
        })
    }

    /// Folds one process's program-store outcome back into the shared
    /// estimator at uninstall: freshly recorded (named-site) programs
    /// merge into the run's [`ProgramSet`] under the recording table's
    /// fingerprint, and the warm-set counters accumulate. Programs
    /// recorded under a *different* table than the set already holds are
    /// skipped — one set, one table.
    pub(crate) fn harvest_programs(
        &self,
        table_fp: u64,
        fresh: Vec<(u64, u64, CostProgram)>,
        warm_hits: u64,
        rejects: u64,
    ) {
        let mut inner = self.inner.lock();
        inner.prog_warm_hits += warm_hits;
        inner.prog_rejects += rejects;
        if fresh.is_empty() {
            return;
        }
        let set = inner
            .programs
            .get_or_insert_with(|| ProgramSet::new(table_fp));
        if set.table_fp() != table_fp {
            return;
        }
        for (site, key, prog) in fresh {
            set.insert(site, key, prog);
        }
    }

    pub(crate) fn register_node(&self, label: impl Into<String>) -> u32 {
        let mut inner = self.inner.lock();
        let label = label.into();
        if let Some(i) = inner.nodes.iter().position(|n| *n == label) {
            return i as u32;
        }
        inner.nodes.push(label);
        (inner.nodes.len() - 1) as u32
    }

    pub(crate) fn register_process(&self, pid: usize, name: String, resource: ResourceId) {
        let mut inner = self.inner.lock();
        assert!(
            resource.index() < inner.platform.len(),
            "resource id out of range for this platform"
        );
        inner.procs.insert(
            pid,
            ProcRecord {
                name,
                resource,
                segments: BTreeMap::new(),
                total_cycles: 0.0,
                total_time: Time::ZERO,
                rtos_time: Time::ZERO,
                counts: OpCounts::new(),
                segment_executions: 0,
                instantaneous: Vec::new(),
                dfgs: BTreeMap::new(),
                cost_trace: Vec::new(),
                detail_trace: Vec::new(),
                resource_wait: Time::ZERO,
                resource_waits: 0,
            },
        );
    }

    /// Returns the estimator to its just-constructed state over
    /// `platform`, keeping the configuration knobs (mode, recording
    /// flags, legacy charging, memo policy, attribution) and discarding
    /// everything a finished run accumulated: process records, node
    /// registrations beyond the implicit three, capture lists,
    /// per-resource busy/RTOS/contention accounting and the hot-path
    /// counters. The backbone of [`crate::Session::reset`].
    pub(crate) fn reset(&self, platform: Platform) {
        let n = platform.len();
        let mut inner = self.inner.lock();
        inner.platform = platform;
        inner.nodes.clear();
        inner
            .nodes
            .extend(["entry".into(), "exit".into(), "wait".into()]);
        inner.procs.clear();
        inner.busy_until.clear();
        inner.busy_until.resize(n, Time::ZERO);
        inner.busy_total.clear();
        inner.busy_total.resize(n, Time::ZERO);
        inner.rtos_total.clear();
        inner.rtos_total.resize(n, Time::ZERO);
        inner.fast_charges = 0;
        inner.site_hits = 0;
        inner.site_misses = 0;
        inner.dfg_arena_reuse = 0;
        inner.programs = None;
        inner.prog_warm_hits = 0;
        inner.prog_rejects = 0;
        inner.captures.clear();
        inner.contention_total.clear();
        inner.contention_total.resize(n, Time::ZERO);
        inner.arbitration_waits.clear();
        inner.arbitration_waits.resize(n, 0);
    }
}

/// Ends the current segment at `node` and performs the §4 back-annotation
/// protocol. Called by the channel wrappers, `timed_wait` and process exit.
///
/// Returns the estimated segment time (zero for environment resources and
/// unmapped processes).
pub(crate) fn end_segment(ctx: &mut ProcCtx, node: u32) -> Time {
    let _span = scperf_obs::profile::span("est.end_segment");
    // Phase 1: drain the thread-local accumulator (or, in replay mode,
    // pop the next recorded segment cost).
    let Some((est, pid, resource, kind, k, rtos_cycles, from, take, replayed)) =
        crate::tls::with(|t| {
            let take = t.take_segment();
            let from = t.current_node;
            t.current_node = node;
            let replayed = t.pop_replay();
            (
                Arc::clone(&t.est),
                t.pid,
                t.resource,
                t.kind,
                t.k,
                t.rtos_cycles,
                from,
                take,
                replayed,
            )
        })
    else {
        return Time::ZERO; // un-instrumented process
    };
    let crate::tls::SegmentTake {
        acc,
        max_ready,
        counts,
        dfg,
        fast_ops,
        site_hits,
        site_misses,
        arena_reuse,
    } = take;

    if kind == ResourceKind::Environment {
        return Time::ZERO;
    }

    // Phase 2: compute the segment's annotated cycle count. A replayed
    // segment reuses the recorded value, which is bit-identical to what
    // live estimation of the same (code, data, cost table) produces.
    // Recorder-captured traces also carry the op counts and HW
    // extremes, so the replayed report matches the live one bit for bit
    // (bare cycle vectors replay timing only).
    let (cycles, t_min, t_max, counts) = match replayed {
        Some((cycles, Some(d))) => (cycles, d.t_min, d.t_max, d.counts),
        Some((cycles, None)) => (cycles, 0.0, 0.0, counts),
        None => match kind {
            ResourceKind::Sequential => (acc, 0.0, 0.0, counts),
            ResourceKind::Parallel => (
                weighted_hw_cycles(max_ready, acc, k),
                max_ready,
                acc,
                counts,
            ),
            ResourceKind::Environment => unreachable!(),
        },
    };

    // Phase 3: record statistics and convert to time.
    let now = ctx.now();
    let (seg_time, rtos_time, mode, spare_dfg) = {
        let mut inner = est.inner.lock();
        let res = inner.platform.resource(resource).clone();
        let seg_time = res.cycles_to_time(cycles);
        let rtos_time = if kind == ResourceKind::Sequential {
            res.cycles_to_time(rtos_cycles)
        } else {
            Time::ZERO
        };
        let mode = inner.mode;
        let record_inst = inner.record_instantaneous;
        let record_dfgs = inner.record_dfgs;
        let record_costs = inner.record_segment_costs;
        let rec = inner
            .procs
            .get_mut(&pid)
            .expect("process registered with the estimator");
        let seg = rec
            .segments
            .entry((from, node))
            .or_insert_with(SegStats::new);
        seg.count += 1;
        seg.total_cycles += cycles;
        seg.min_cycles = seg.min_cycles.min(cycles);
        seg.max_cycles = seg.max_cycles.max(cycles);
        seg.total_time += seg_time;
        seg.counts.merge(&counts);
        seg.last_t_min = t_min;
        seg.last_t_max = t_max;
        if record_costs {
            rec.cost_trace.push(cycles);
            rec.detail_trace.push(crate::recorder::SegDetail {
                counts,
                t_min,
                t_max,
            });
        }
        rec.total_cycles += cycles;
        rec.total_time += seg_time;
        rec.rtos_time += rtos_time;
        rec.counts.merge(&counts);
        rec.segment_executions += 1;
        if record_inst {
            rec.instantaneous.push(InstSample {
                at: now,
                segment: (from, node),
                cycles,
                dur: seg_time + rtos_time,
            });
        }
        let mut spare_dfg = None;
        if let Some(dfg) = dfg {
            use std::collections::btree_map::Entry;
            match (record_dfgs, rec.dfgs.entry((from, node))) {
                (true, Entry::Vacant(slot)) => {
                    slot.insert(dfg);
                }
                // Repeat execution (or recording switched off): the graph
                // is not kept — recycle its buffer into the thread arena.
                _ => spare_dfg = Some(dfg),
            }
        }
        inner.rtos_total[resource.index()] += rtos_time;
        // Hot-path counters, folded in under the lock already held for
        // the segment statistics (zero cost on the charge path itself).
        inner.fast_charges += fast_ops;
        inner.site_hits += site_hits;
        inner.site_misses += site_misses;
        inner.dfg_arena_reuse += arena_reuse;
        (seg_time, rtos_time, mode, spare_dfg)
    };
    if let Some(dfg) = spare_dfg {
        crate::tls::recycle_dfg(dfg);
    }

    // Phase 4: back-annotation (§4).
    let total = seg_time + rtos_time;
    match (mode, kind) {
        (Mode::EstimateOnly, _) => {
            // Untimed run: account busy time but do not sleep.
            let mut inner = est.inner.lock();
            inner.busy_total[resource.index()] += total;
        }
        (Mode::StrictTimed, ResourceKind::Parallel) => {
            // Parallel resources: the process resumes at
            // max(previous segment end, waking event) — which is exactly
            // `now` here, since host execution is instantaneous — and then
            // sleeps the estimated time.
            {
                let mut inner = est.inner.lock();
                inner.busy_total[resource.index()] += total;
            }
            if !total.is_zero() {
                ctx.wait(total);
            }
        }
        (Mode::StrictTimed, ResourceKind::Sequential) => {
            // Sequential resources: wait until the processor is observed
            // free *at the current time* (re-checking after every wait,
            // because another process can take the resource meanwhile —
            // the arbitration loop of §4), then occupy it.
            loop {
                // `busy_until` is immediately visible to every process, so
                // under parallel evaluation the arbitration must observe and
                // occupy the resource in canonical pid order (see
                // `docs/PARALLELISM.md`): wait for lower-pid round members
                // before each check.
                ctx.par_fence();
                let now = ctx.now();
                let free_at = est.inner.lock().busy_until[resource.index()];
                if free_at <= now {
                    break;
                }
                ctx.wait(free_at - now);
            }
            {
                let mut inner = est.inner.lock();
                let resumed = ctx.now();
                let until = resumed + total;
                inner.busy_until[resource.index()] = until;
                inner.busy_total[resource.index()] += total;
                // Attribution: the time between reaching the arbitration
                // point (Phase-3 `now`) and acquiring the resource is the
                // contention charged to this resource. Measured from
                // values already in hand — no extra kernel calls, so the
                // simulated schedule is bit-identical either way.
                if inner.attribution {
                    let waited = resumed.saturating_sub(now);
                    if !waited.is_zero() {
                        let idx = resource.index();
                        inner.contention_total[idx] += waited;
                        inner.arbitration_waits[idx] += 1;
                        if let Some(rec) = inner.procs.get_mut(&pid) {
                            rec.resource_wait += waited;
                            rec.resource_waits += 1;
                        }
                    }
                }
            }
            if !total.is_zero() {
                ctx.wait(total);
            }
        }
        (Mode::StrictTimed, ResourceKind::Environment) => unreachable!(),
    }
    total
}
