//! Annotated arrays: charged `[]` indexing.
//!
//! Rust cannot hook cost collection into `Index` for plain slices (the
//! trait returns a reference, not a value we can tag), so annotated code
//! uses [`GArr`] with explicit `at`/`set` accessors — the equivalent of the
//! paper's overloaded `operator[]` with its `t_[]` cost (Figure 3).

use crate::cost::Op;
use crate::gval::{IndexValue, G};
use crate::hw::NO_NODE;
use crate::tls;

/// An annotated array of scalars. Every element access through
/// [`GArr::at`] / [`GArr::set`] charges one [`Op::Index`] (plus the
/// assignment cost for `set`).
///
/// # Examples
///
/// ```
/// use scperf_core::{g_usize, GArr};
///
/// let mut a = GArr::<i32>::zeroed(4);
/// a.set(g_usize(2), 7.into());
/// assert_eq!(a.at(g_usize(2)).get(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GArr<T> {
    data: Vec<T>,
}

impl<T: Copy + Default> GArr<T> {
    /// A zero-initialized array of length `n` (allocation itself is free —
    /// it models static storage).
    pub fn zeroed(n: usize) -> GArr<T> {
        GArr {
            data: vec![T::default(); n],
        }
    }
}

impl<T: Copy> GArr<T> {
    /// Wraps existing data (free: models pre-existing input buffers).
    pub fn from_vec(data: Vec<T>) -> GArr<T> {
        GArr { data }
    }

    /// Wraps a slice by copying it (free).
    pub fn from_slice(data: &[T]) -> GArr<T> {
        GArr {
            data: data.to_vec(),
        }
    }

    /// The array length (compile-time knowledge: free).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Charged element read: `a[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn at<I: IndexValue>(&self, i: G<I>) -> G<T> {
        let (iv, iready, inode) = i.parts();
        let (ready, node) = tls::charge(Op::Index, iready, inode, 0.0, NO_NODE);
        G::from_parts(self.data[iv.as_index()], ready, node)
    }

    /// Charged element read with an untracked index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn at_raw(&self, i: usize) -> G<T> {
        let (ready, node) = tls::charge(Op::Index, 0.0, NO_NODE, 0.0, NO_NODE);
        G::from_parts(self.data[i], ready, node)
    }

    /// Charged element write: `a[i] = v` (one `[]` plus one `=`).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set<I: IndexValue>(&mut self, i: G<I>, v: G<T>) {
        let (iv, iready, inode) = i.parts();
        let (vv, vready, vnode) = v.parts();
        let (r1, n1) = tls::charge(Op::Index, iready, inode, 0.0, NO_NODE);
        let _ = tls::charge(
            Op::Assign,
            vready.max(r1),
            if vnode != NO_NODE { vnode } else { n1 },
            r1,
            n1,
        );
        self.data[iv.as_index()] = vv;
    }

    /// Charged element write with an untracked index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set_raw(&mut self, i: usize, v: G<T>) {
        let (vv, vready, vnode) = v.parts();
        let (r1, n1) = tls::charge(Op::Index, 0.0, NO_NODE, 0.0, NO_NODE);
        let _ = tls::charge(Op::Assign, vready.max(r1), vnode, r1, n1);
        self.data[i] = vv;
    }

    /// Uncharged read (plumbing/verification code outside the measured
    /// algorithm).
    #[inline]
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Uncharged write (test setup, result extraction).
    #[inline]
    pub fn poke(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    /// The underlying data (free).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Extracts the underlying data (free).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Copy> From<Vec<T>> for GArr<T> {
    fn from(data: Vec<T>) -> GArr<T> {
        GArr::from_vec(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostTable;
    use crate::gval::g_usize;
    use crate::resource::ResourceKind;
    use crate::tls::testutil::with_test_ctx;

    #[test]
    fn reads_and_writes_round_trip() {
        let mut a = GArr::<i64>::zeroed(3);
        a.set(g_usize(0), 10.into());
        a.set_raw(1, 20.into());
        a.poke(2, 30);
        assert_eq!(a.at(g_usize(0)).get(), 10);
        assert_eq!(a.at_raw(1).get(), 20);
        assert_eq!(a.peek(2), 30);
        assert_eq!(a.as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn indexing_costs_are_charged() {
        let table = CostTable::from_pairs([(Op::Index, 5.0), (Op::Assign, 2.0)]);
        let ctx = with_test_ctx(ResourceKind::Sequential, table, false, || {
            let mut a = GArr::<i32>::zeroed(4);
            a.set_raw(0, G::raw(1)); // index + assign = 7
            let _ = a.at_raw(0); // index = 5
        });
        assert_eq!(ctx.acc, 12.0);
        assert_eq!(ctx.counts.get(Op::Index), 2);
        assert_eq!(ctx.counts.get(Op::Assign), 1);
    }

    #[test]
    fn hw_load_depends_on_index_value() {
        // index: 1 cycle, add: 1 cycle.
        let table = CostTable::from_pairs([(Op::Index, 1.0), (Op::Add, 1.0)]);
        let ctx = with_test_ctx(ResourceKind::Parallel, table, false, || {
            let a = GArr::<i32>::from_vec(vec![1, 2, 3, 4]);
            let i = G::<usize>::raw(0) + G::<usize>::raw(1); // ready 1
            let v = a.at(i); // ready 2 (depends on i)
            let _ = v + v; // ready 3
        });
        assert_eq!(ctx.max_ready, 3.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let a = GArr::<i32>::zeroed(1);
        let _ = a.at_raw(5);
    }

    #[test]
    fn from_conversions() {
        let a: GArr<u8> = vec![1, 2].into();
        assert_eq!(a.len(), 2);
        let b = GArr::from_slice(&[3_u8, 4]);
        assert_eq!(b.into_vec(), vec![3, 4]);
        assert!(!a.is_empty());
        assert!(GArr::<u8>::zeroed(0).is_empty());
    }
}
