//! Performance reports: the "total execution times for processes and
//! resources … generated automatically" of §4, plus segment-level detail
//! on demand.

use std::fmt;

use scperf_kernel::Time;

use crate::cost::OpCounts;
use crate::estimator::{EstInner, InstSample, Mode, SegStats};
use crate::resource::{ResourceId, ResourceKind};

/// Per-segment report entry: one `(from, to)` node pair of one process.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReport {
    /// Label of the node the segment starts at.
    pub from: String,
    /// Label of the node the segment ends at.
    pub to: String,
    /// Aggregated statistics.
    pub stats: SegStats,
}

/// Per-process report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessReport {
    /// Process name.
    pub name: String,
    /// The resource the process is mapped to.
    pub resource: ResourceId,
    /// That resource's name.
    pub resource_name: String,
    /// That resource's kind.
    pub kind: ResourceKind,
    /// Total estimated cycles over the whole simulation.
    pub total_cycles: f64,
    /// Total estimated execution time.
    pub total_time: Time,
    /// Total RTOS overhead attributed to this process.
    pub rtos_time: Time,
    /// Number of segment executions.
    pub segment_executions: u64,
    /// Merged operation counts.
    pub counts: OpCounts,
    /// Per-segment detail.
    pub segments: Vec<SegmentReport>,
    /// Instantaneous samples (when enabled via
    /// [`crate::PerfModel::record_instantaneous`]).
    pub instantaneous: Vec<InstSample>,
}

/// Per-resource report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceReport {
    /// Resource name.
    pub name: String,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Total time the resource executed segments (including RTOS).
    pub busy_time: Time,
    /// Of which RTOS overhead.
    pub rtos_time: Time,
}

/// Per-resource utilization and contention entry of a
/// [`UtilizationReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUtilization {
    /// Resource name.
    pub name: String,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Simulated time the resource executed segments (including RTOS).
    pub busy: Time,
    /// Busy time as a percentage of the run's total simulated time.
    pub busy_pct: f64,
    /// Simulated time processes spent waiting behind this resource in
    /// the §4 arbitration loop (sequential resources only).
    pub contention: Time,
    /// Contention time as a percentage of the run's total simulated
    /// time.
    pub contention_pct: f64,
    /// Number of non-zero arbitration waits.
    pub waits: u64,
}

/// Per-process contention entry of a [`UtilizationReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessContention {
    /// Process name.
    pub name: String,
    /// The resource the process is mapped to.
    pub resource: String,
    /// Simulated time this process spent waiting behind its resource.
    pub wait: Time,
    /// Number of non-zero arbitration waits.
    pub waits: u64,
}

/// Per-channel utilization entry of a [`UtilizationReport`], from the
/// kernel's channel accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelUtilization {
    /// Channel name.
    pub name: String,
    /// High-water mark of the buffered element count (FIFOs).
    pub max_depth: u64,
    /// Times a process blocked on this channel.
    pub blocks: u64,
    /// Total simulated time processes spent blocked on this channel.
    pub blocked: Time,
}

/// Resource utilization & contention attribution for one run: which
/// resources were busiest, how long processes queued behind them, and
/// how deep the channels ran. Only populated when attribution was
/// enabled (`SimConfig::attribution` / [`crate::PerfModel::attribution`]);
/// attribution is measurement-only, so enabling it never changes the
/// simulated results themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Total simulated time of the run (the denominator of the
    /// percentage fields).
    pub total_time: Time,
    /// Per-resource entries, sorted by busy time descending — the head
    /// of the list is the utilization bottleneck.
    pub resources: Vec<ResourceUtilization>,
    /// Per-process contention entries, in spawn order.
    pub processes: Vec<ProcessContention>,
    /// Per-channel entries, in creation order (filled from the kernel's
    /// channel accounting by `Session::report`; empty when built from a
    /// bare [`crate::PerfModel`]).
    pub channels: Vec<ChannelUtilization>,
}

impl UtilizationReport {
    /// The bottleneck *sequential* resource: the busiest one that
    /// processes can actually queue behind. `None` when the platform
    /// has no sequential resource.
    pub fn bottleneck(&self) -> Option<&ResourceUtilization> {
        self.resources
            .iter()
            .find(|r| r.kind == ResourceKind::Sequential)
    }

    /// The top `n` resources by busy time.
    pub fn top_resources(&self, n: usize) -> &[ResourceUtilization] {
        &self.resources[..n.min(self.resources.len())]
    }
}

impl fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- utilization (total {}) --", self.total_time)?;
        for r in &self.resources {
            writeln!(
                f,
                "{:<16} {:<12} busy {:>6.1}%  contention {:>6.1}%  waits {:>6}",
                r.name,
                format!("{:?}", r.kind),
                r.busy_pct,
                r.contention_pct,
                r.waits
            )?;
        }
        for c in &self.channels {
            writeln!(
                f,
                "{:<16} channel      depth≤{:<4} blocks {:>5}  blocked {}",
                c.name, c.max_depth, c.blocks, c.blocked
            )?;
        }
        Ok(())
    }
}

/// The complete performance report of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The mode the model ran in.
    pub mode: Mode,
    /// Per-process results, in spawn order.
    pub processes: Vec<ProcessReport>,
    /// Per-resource results, in declaration order.
    pub resources: Vec<ResourceReport>,
    /// Utilization & contention attribution (`None` unless attribution
    /// was enabled and the report was built through `Session::report`
    /// or [`crate::PerfModel::utilization_report`]).
    pub utilization: Option<UtilizationReport>,
}

impl Report {
    pub(crate) fn build(inner: &EstInner) -> Report {
        let processes = inner
            .procs
            .values()
            .map(|rec| {
                let res = inner.platform.resource(rec.resource);
                ProcessReport {
                    name: rec.name.clone(),
                    resource: rec.resource,
                    resource_name: res.name.clone(),
                    kind: res.kind,
                    total_cycles: rec.total_cycles,
                    total_time: rec.total_time,
                    rtos_time: rec.rtos_time,
                    segment_executions: rec.segment_executions,
                    counts: rec.counts,
                    segments: rec
                        .segments
                        .iter()
                        .map(|(&(f, t), stats)| SegmentReport {
                            from: inner.nodes[f as usize].clone(),
                            to: inner.nodes[t as usize].clone(),
                            stats: stats.clone(),
                        })
                        .collect(),
                    instantaneous: rec.instantaneous.clone(),
                }
            })
            .collect();
        let resources = inner
            .platform
            .iter()
            .map(|(id, r)| ResourceReport {
                name: r.name.clone(),
                kind: r.kind,
                busy_time: inner.busy_total[id.index()],
                rtos_time: inner.rtos_total[id.index()],
            })
            .collect();
        Report {
            mode: inner.mode,
            processes,
            resources,
            utilization: None,
        }
    }

    pub(crate) fn build_utilization(inner: &EstInner, total_time: Time) -> UtilizationReport {
        let pct = |t: Time| {
            if total_time.is_zero() {
                0.0
            } else {
                t.as_ps() as f64 / total_time.as_ps() as f64 * 100.0
            }
        };
        let mut resources: Vec<ResourceUtilization> = inner
            .platform
            .iter()
            .map(|(id, r)| ResourceUtilization {
                name: r.name.clone(),
                kind: r.kind,
                busy: inner.busy_total[id.index()],
                busy_pct: pct(inner.busy_total[id.index()]),
                contention: inner.contention_total[id.index()],
                contention_pct: pct(inner.contention_total[id.index()]),
                waits: inner.arbitration_waits[id.index()],
            })
            .collect();
        resources.sort_by(|a, b| b.busy.cmp(&a.busy).then_with(|| a.name.cmp(&b.name)));
        let processes = inner
            .procs
            .values()
            .map(|rec| ProcessContention {
                name: rec.name.clone(),
                resource: inner.platform.resource(rec.resource).name.clone(),
                wait: rec.resource_wait,
                waits: rec.resource_waits,
            })
            .collect();
        UtilizationReport {
            total_time,
            resources,
            processes,
            channels: Vec::new(),
        }
    }

    /// Looks up a process report by name.
    pub fn process(&self, name: &str) -> Option<&ProcessReport> {
        self.processes.iter().find(|p| p.name == name)
    }

    /// Total estimated time across all processes.
    pub fn total_estimated_time(&self) -> Time {
        self.processes.iter().map(|p| p.total_time).sum()
    }
}

impl Report {
    /// Renders the per-process table as CSV
    /// (`process,resource,kind,cycles,time_ns,rtos_ns,segments`).
    pub fn to_csv(&self) -> String {
        use fmt::Write;
        let mut out = String::from("process,resource,kind,cycles,time_ns,rtos_ns,segments\n");
        for p in &self.processes {
            let _ = writeln!(
                out,
                "{},{},{:?},{},{},{},{}",
                p.name,
                p.resource_name,
                p.kind,
                p.total_cycles,
                p.total_time.as_ns_f64(),
                p.rtos_time.as_ns_f64(),
                p.segment_executions
            );
        }
        out
    }
}

impl ProcessReport {
    /// Renders this process's instantaneous samples (when recorded via
    /// [`crate::PerfModel::record_instantaneous`]) as CSV
    /// (`time_ns,from,to,cycles,dur_ns`) — the paper's "instantaneous
    /// estimated parameters for each process", ready for post-processing.
    pub fn instantaneous_csv(&self, node_label: impl Fn(u32) -> String) -> String {
        use fmt::Write;
        let mut out = String::from("time_ns,from,to,cycles,dur_ns\n");
        for s in &self.instantaneous {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                s.at.as_ns_f64(),
                node_label(s.segment.0),
                node_label(s.segment.1),
                s.cycles,
                s.dur.as_ns_f64()
            );
        }
        out
    }

    /// Looks up a segment by its `(from, to)` node labels.
    pub fn segment(&self, from: &str, to: &str) -> Option<&SegmentReport> {
        self.segments.iter().find(|s| s.from == from && s.to == to)
    }

    /// Mean cycles per segment execution.
    pub fn mean_segment_cycles(&self) -> f64 {
        if self.segment_executions == 0 {
            0.0
        } else {
            self.total_cycles / self.segment_executions as f64
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== scperf report ({:?}) ==", self.mode)?;
        writeln!(
            f,
            "{:<16} {:<10} {:>14} {:>14} {:>12} {:>8}",
            "process", "resource", "cycles", "time", "rtos", "segs"
        )?;
        for p in &self.processes {
            writeln!(
                f,
                "{:<16} {:<10} {:>14.1} {:>14} {:>12} {:>8}",
                p.name,
                p.resource_name,
                p.total_cycles,
                p.total_time.to_string(),
                p.rtos_time.to_string(),
                p.segment_executions
            )?;
        }
        writeln!(f, "-- resources --")?;
        for r in &self.resources {
            writeln!(
                f,
                "{:<16} {:<12} busy {:>14}   rtos {:>12}",
                r.name,
                format!("{:?}", r.kind),
                r.busy_time.to_string(),
                r.rtos_time.to_string()
            )?;
        }
        if let Some(u) = &self.utilization {
            write!(f, "{u}")?;
        }
        Ok(())
    }
}

/// A process graph (the paper's Figure 2): nodes are channel accesses,
/// waits and entry/exit; edges are the observed segments.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessGraph {
    /// The process name.
    pub process: String,
    /// Edges: `(from, to, executions, mean cycles)`.
    pub edges: Vec<(String, String, u64, f64)>,
}

impl ProcessGraph {
    /// Builds the graph from a process report.
    pub fn from_report(p: &ProcessReport) -> ProcessGraph {
        ProcessGraph {
            process: p.name.clone(),
            edges: p
                .segments
                .iter()
                .map(|s| {
                    (
                        s.from.clone(),
                        s.to.clone(),
                        s.stats.count,
                        if s.stats.count == 0 {
                            0.0
                        } else {
                            s.stats.total_cycles / s.stats.count as f64
                        },
                    )
                })
                .collect(),
        }
    }

    /// Renders the graph in Graphviz DOT format, edges labelled with
    /// execution counts and mean cycles.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.process);
        let _ = writeln!(out, "  rankdir=TB;");
        let mut nodes: Vec<&str> = Vec::new();
        for (f_, t, _, _) in &self.edges {
            for n in [f_.as_str(), t.as_str()] {
                if !nodes.contains(&n) {
                    nodes.push(n);
                }
            }
        }
        for n in &nodes {
            let _ = writeln!(out, "  \"{n}\";");
        }
        for (f_, t, count, mean) in &self.edges {
            let _ = writeln!(
                out,
                "  \"{f_}\" -> \"{t}\" [label=\"{count}x, {mean:.1}cy\"];"
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_process_report() -> ProcessReport {
        ProcessReport {
            name: "p".into(),
            resource: ResourceId(0),
            resource_name: "cpu".into(),
            kind: ResourceKind::Sequential,
            total_cycles: 100.0,
            total_time: Time::us(1),
            rtos_time: Time::ns(50),
            segment_executions: 4,
            counts: OpCounts::new(),
            segments: vec![SegmentReport {
                from: "entry".into(),
                to: "ch.write".into(),
                stats: SegStats {
                    count: 4,
                    total_cycles: 100.0,
                    min_cycles: 20.0,
                    max_cycles: 30.0,
                    total_time: Time::us(1),
                    counts: OpCounts::new(),
                    last_t_min: 0.0,
                    last_t_max: 0.0,
                },
            }],
            instantaneous: Vec::new(),
        }
    }

    #[test]
    fn mean_segment_cycles() {
        let p = sample_process_report();
        assert_eq!(p.mean_segment_cycles(), 25.0);
        assert!(p.segment("entry", "ch.write").is_some());
        assert!(p.segment("entry", "nope").is_none());
    }

    #[test]
    fn graph_dot_contains_edges() {
        let p = sample_process_report();
        let g = ProcessGraph::from_report(&p);
        let dot = g.to_dot();
        assert!(dot.contains("\"entry\" -> \"ch.write\""));
        assert!(dot.contains("4x, 25.0cy"));
    }

    #[test]
    fn report_display_renders() {
        let report = Report {
            mode: Mode::StrictTimed,
            processes: vec![sample_process_report()],
            resources: vec![ResourceReport {
                name: "cpu".into(),
                kind: ResourceKind::Sequential,
                busy_time: Time::us(1),
                rtos_time: Time::ns(50),
            }],
            utilization: None,
        };
        let s = report.to_string();
        assert!(s.contains("scperf report"));
        assert!(s.contains("cpu"));
        assert!(s.contains("100.0"));
        assert_eq!(report.total_estimated_time(), Time::us(1));
        assert!(report.process("p").is_some());
    }
}
