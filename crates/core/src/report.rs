//! Performance reports: the "total execution times for processes and
//! resources … generated automatically" of §4, plus segment-level detail
//! on demand.

use std::fmt;

use scperf_kernel::Time;

use crate::cost::OpCounts;
use crate::estimator::{EstInner, InstSample, Mode, SegStats};
use crate::resource::{ResourceId, ResourceKind};

/// Per-segment report entry: one `(from, to)` node pair of one process.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReport {
    /// Label of the node the segment starts at.
    pub from: String,
    /// Label of the node the segment ends at.
    pub to: String,
    /// Aggregated statistics.
    pub stats: SegStats,
}

/// Per-process report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessReport {
    /// Process name.
    pub name: String,
    /// The resource the process is mapped to.
    pub resource: ResourceId,
    /// That resource's name.
    pub resource_name: String,
    /// That resource's kind.
    pub kind: ResourceKind,
    /// Total estimated cycles over the whole simulation.
    pub total_cycles: f64,
    /// Total estimated execution time.
    pub total_time: Time,
    /// Total RTOS overhead attributed to this process.
    pub rtos_time: Time,
    /// Number of segment executions.
    pub segment_executions: u64,
    /// Merged operation counts.
    pub counts: OpCounts,
    /// Per-segment detail.
    pub segments: Vec<SegmentReport>,
    /// Instantaneous samples (when enabled via
    /// [`crate::PerfModel::record_instantaneous`]).
    pub instantaneous: Vec<InstSample>,
}

/// Per-resource report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceReport {
    /// Resource name.
    pub name: String,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Total time the resource executed segments (including RTOS).
    pub busy_time: Time,
    /// Of which RTOS overhead.
    pub rtos_time: Time,
}

/// The complete performance report of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The mode the model ran in.
    pub mode: Mode,
    /// Per-process results, in spawn order.
    pub processes: Vec<ProcessReport>,
    /// Per-resource results, in declaration order.
    pub resources: Vec<ResourceReport>,
}

impl Report {
    pub(crate) fn build(inner: &EstInner) -> Report {
        let processes = inner
            .procs
            .values()
            .map(|rec| {
                let res = inner.platform.resource(rec.resource);
                ProcessReport {
                    name: rec.name.clone(),
                    resource: rec.resource,
                    resource_name: res.name.clone(),
                    kind: res.kind,
                    total_cycles: rec.total_cycles,
                    total_time: rec.total_time,
                    rtos_time: rec.rtos_time,
                    segment_executions: rec.segment_executions,
                    counts: rec.counts,
                    segments: rec
                        .segments
                        .iter()
                        .map(|(&(f, t), stats)| SegmentReport {
                            from: inner.nodes[f as usize].clone(),
                            to: inner.nodes[t as usize].clone(),
                            stats: stats.clone(),
                        })
                        .collect(),
                    instantaneous: rec.instantaneous.clone(),
                }
            })
            .collect();
        let resources = inner
            .platform
            .iter()
            .map(|(id, r)| ResourceReport {
                name: r.name.clone(),
                kind: r.kind,
                busy_time: inner.busy_total[id.index()],
                rtos_time: inner.rtos_total[id.index()],
            })
            .collect();
        Report {
            mode: inner.mode,
            processes,
            resources,
        }
    }

    /// Looks up a process report by name.
    pub fn process(&self, name: &str) -> Option<&ProcessReport> {
        self.processes.iter().find(|p| p.name == name)
    }

    /// Total estimated time across all processes.
    pub fn total_estimated_time(&self) -> Time {
        self.processes.iter().map(|p| p.total_time).sum()
    }
}

impl Report {
    /// Renders the per-process table as CSV
    /// (`process,resource,kind,cycles,time_ns,rtos_ns,segments`).
    pub fn to_csv(&self) -> String {
        use fmt::Write;
        let mut out = String::from("process,resource,kind,cycles,time_ns,rtos_ns,segments\n");
        for p in &self.processes {
            let _ = writeln!(
                out,
                "{},{},{:?},{},{},{},{}",
                p.name,
                p.resource_name,
                p.kind,
                p.total_cycles,
                p.total_time.as_ns_f64(),
                p.rtos_time.as_ns_f64(),
                p.segment_executions
            );
        }
        out
    }
}

impl ProcessReport {
    /// Renders this process's instantaneous samples (when recorded via
    /// [`crate::PerfModel::record_instantaneous`]) as CSV
    /// (`time_ns,from,to,cycles,dur_ns`) — the paper's "instantaneous
    /// estimated parameters for each process", ready for post-processing.
    pub fn instantaneous_csv(&self, node_label: impl Fn(u32) -> String) -> String {
        use fmt::Write;
        let mut out = String::from("time_ns,from,to,cycles,dur_ns\n");
        for s in &self.instantaneous {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                s.at.as_ns_f64(),
                node_label(s.segment.0),
                node_label(s.segment.1),
                s.cycles,
                s.dur.as_ns_f64()
            );
        }
        out
    }

    /// Looks up a segment by its `(from, to)` node labels.
    pub fn segment(&self, from: &str, to: &str) -> Option<&SegmentReport> {
        self.segments.iter().find(|s| s.from == from && s.to == to)
    }

    /// Mean cycles per segment execution.
    pub fn mean_segment_cycles(&self) -> f64 {
        if self.segment_executions == 0 {
            0.0
        } else {
            self.total_cycles / self.segment_executions as f64
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== scperf report ({:?}) ==", self.mode)?;
        writeln!(
            f,
            "{:<16} {:<10} {:>14} {:>14} {:>12} {:>8}",
            "process", "resource", "cycles", "time", "rtos", "segs"
        )?;
        for p in &self.processes {
            writeln!(
                f,
                "{:<16} {:<10} {:>14.1} {:>14} {:>12} {:>8}",
                p.name,
                p.resource_name,
                p.total_cycles,
                p.total_time.to_string(),
                p.rtos_time.to_string(),
                p.segment_executions
            )?;
        }
        writeln!(f, "-- resources --")?;
        for r in &self.resources {
            writeln!(
                f,
                "{:<16} {:<12} busy {:>14}   rtos {:>12}",
                r.name,
                format!("{:?}", r.kind),
                r.busy_time.to_string(),
                r.rtos_time.to_string()
            )?;
        }
        Ok(())
    }
}

/// A process graph (the paper's Figure 2): nodes are channel accesses,
/// waits and entry/exit; edges are the observed segments.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessGraph {
    /// The process name.
    pub process: String,
    /// Edges: `(from, to, executions, mean cycles)`.
    pub edges: Vec<(String, String, u64, f64)>,
}

impl ProcessGraph {
    /// Builds the graph from a process report.
    pub fn from_report(p: &ProcessReport) -> ProcessGraph {
        ProcessGraph {
            process: p.name.clone(),
            edges: p
                .segments
                .iter()
                .map(|s| {
                    (
                        s.from.clone(),
                        s.to.clone(),
                        s.stats.count,
                        if s.stats.count == 0 {
                            0.0
                        } else {
                            s.stats.total_cycles / s.stats.count as f64
                        },
                    )
                })
                .collect(),
        }
    }

    /// Renders the graph in Graphviz DOT format, edges labelled with
    /// execution counts and mean cycles.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.process);
        let _ = writeln!(out, "  rankdir=TB;");
        let mut nodes: Vec<&str> = Vec::new();
        for (f_, t, _, _) in &self.edges {
            for n in [f_.as_str(), t.as_str()] {
                if !nodes.contains(&n) {
                    nodes.push(n);
                }
            }
        }
        for n in &nodes {
            let _ = writeln!(out, "  \"{n}\";");
        }
        for (f_, t, count, mean) in &self.edges {
            let _ = writeln!(
                out,
                "  \"{f_}\" -> \"{t}\" [label=\"{count}x, {mean:.1}cy\"];"
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_process_report() -> ProcessReport {
        ProcessReport {
            name: "p".into(),
            resource: ResourceId(0),
            resource_name: "cpu".into(),
            kind: ResourceKind::Sequential,
            total_cycles: 100.0,
            total_time: Time::us(1),
            rtos_time: Time::ns(50),
            segment_executions: 4,
            counts: OpCounts::new(),
            segments: vec![SegmentReport {
                from: "entry".into(),
                to: "ch.write".into(),
                stats: SegStats {
                    count: 4,
                    total_cycles: 100.0,
                    min_cycles: 20.0,
                    max_cycles: 30.0,
                    total_time: Time::us(1),
                    counts: OpCounts::new(),
                    last_t_min: 0.0,
                    last_t_max: 0.0,
                },
            }],
            instantaneous: Vec::new(),
        }
    }

    #[test]
    fn mean_segment_cycles() {
        let p = sample_process_report();
        assert_eq!(p.mean_segment_cycles(), 25.0);
        assert!(p.segment("entry", "ch.write").is_some());
        assert!(p.segment("entry", "nope").is_none());
    }

    #[test]
    fn graph_dot_contains_edges() {
        let p = sample_process_report();
        let g = ProcessGraph::from_report(&p);
        let dot = g.to_dot();
        assert!(dot.contains("\"entry\" -> \"ch.write\""));
        assert!(dot.contains("4x, 25.0cy"));
    }

    #[test]
    fn report_display_renders() {
        let report = Report {
            mode: Mode::StrictTimed,
            processes: vec![sample_process_report()],
            resources: vec![ResourceReport {
                name: "cpu".into(),
                kind: ResourceKind::Sequential,
                busy_time: Time::us(1),
                rtos_time: Time::ns(50),
            }],
        };
        let s = report.to_string();
        assert!(s.contains("scperf report"));
        assert!(s.contains("cpu"));
        assert!(s.contains("100.0"));
        assert_eq!(report.total_estimated_time(), Time::us(1));
        assert!(report.process("p").is_some());
    }
}
