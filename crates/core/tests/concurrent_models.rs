//! Thread-coexistence audit for the estimator (PR 2 tentpole support).
//!
//! The design-space-exploration engine runs one `Simulator` + `PerfModel`
//! per worker thread, many workers per process. These tests pin the
//! invariants that makes that safe:
//!
//! * all estimator state is per-`PerfModel` (`Arc<EstimatorShared>`), not
//!   process-global, so concurrent models cannot observe each other;
//! * the `thread_local!` estimation context is installed on the *process*
//!   threads the kernel spawns (fresh per simulation), never on the
//!   worker thread driving `Simulator::run`;
//! * segment-cost replay ([`PerfModel::spawn_replaying`]) reproduces a
//!   live run's strict-timed schedule bit-exactly.

use scperf_core::{charge_op, timed_wait, CostTable, Mode, Op, PerfModel, Platform, Replay};
use scperf_kernel::{Simulator, Time};

/// Charges exactly `n` unit-cost Adds into the running segment.
fn burn(n: u64) {
    for _ in 0..n {
        charge_op(Op::Add);
    }
}

/// A two-process strict-timed scenario parameterized by a seed so each
/// concurrent instance computes different numbers: a producer charges
/// work then writes frames to a FIFO; a consumer reads and charges more.
/// Returns (end_time, producer cycles, consumer cycles).
fn run_pipeline(seed: u64) -> (Time, f64, f64) {
    let table = CostTable::from_pairs([(Op::Add, 1.0)]);
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu", Time::ns(10), table, 25.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let fifo = model.fifo::<u64>(&mut sim, "frames", 2);

    let tx = fifo.clone();
    model.spawn(&mut sim, "producer", cpu, move |ctx| {
        for i in 0..4_u64 {
            burn(100 + seed % 7 + i);
            tx.write(ctx, i);
        }
    });
    model.spawn(&mut sim, "consumer", cpu, move |ctx| {
        for _ in 0..4 {
            let v = fifo.read(ctx);
            burn(50 + v);
            timed_wait(ctx, Time::ns(30));
        }
    });

    let stats = sim.run().unwrap();
    let report = model.report();
    (
        stats.end_time,
        report.process("producer").unwrap().total_cycles,
        report.process("consumer").unwrap().total_cycles,
    )
}

#[test]
fn concurrent_models_match_sequential_oracle() {
    // Sequential oracle first…
    let expected: Vec<_> = (0..6).map(run_pipeline).collect();

    // …then the same six scenarios on six concurrent worker threads.
    let got: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6_u64)
            .map(|seed| scope.spawn(move || run_pipeline(seed)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(got, expected, "concurrent simulations must not interact");
}

#[test]
fn nested_simulation_on_a_process_thread_is_isolated() {
    // A process body that itself constructs and runs an inner simulation
    // (as a DSE evaluation inside a larger harness might). The inner
    // model's processes run on their own threads, so the outer process's
    // estimation context must be untouched.
    let table = CostTable::from_pairs([(Op::Add, 1.0)]);
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu", Time::ns(10), table, 0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.spawn(&mut sim, "outer", cpu, |_ctx| {
        burn(10);
        let (inner_end, _, _) = run_pipeline(3);
        assert!(inner_end > Time::ZERO);
        burn(10);
    });
    let stats = sim.run().unwrap();
    assert_eq!(stats.end_time, Time::ns(200), "20 cycles @ 10ns");
}

/// Runs the pipeline once while recording per-segment cycle traces,
/// returning (end_time, per-process traces).
fn record_traces(seed: u64) -> (Time, Replay, Replay) {
    let table = CostTable::from_pairs([(Op::Add, 1.0)]);
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu", Time::ns(10), table, 25.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let recorder = model.recorder();
    let fifo = model.fifo::<u64>(&mut sim, "frames", 2);

    let tx = fifo.clone();
    model.spawn(&mut sim, "producer", cpu, move |ctx| {
        for i in 0..4_u64 {
            burn(100 + seed % 7 + i);
            tx.write(ctx, i);
        }
    });
    model.spawn(&mut sim, "consumer", cpu, move |ctx| {
        for _ in 0..4 {
            let v = fifo.read(ctx);
            burn(50 + v);
            timed_wait(ctx, Time::ns(30));
        }
    });
    let stats = sim.run().unwrap();
    (
        stats.end_time,
        recorder.replay("producer").unwrap(),
        recorder.replay("consumer").unwrap(),
    )
}

#[test]
fn replayed_run_matches_live_run_bit_exactly() {
    let seed = 5;
    let (live_end, prod_trace, cons_trace) = record_traces(seed);
    assert!(!prod_trace.is_empty() && !cons_trace.is_empty());

    // Replay: identical channel-access structure, but the bodies do NOT
    // charge anything — cycles come from the recorded traces.
    let table = CostTable::from_pairs([(Op::Add, 1.0)]);
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu", Time::ns(10), table, 25.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let fifo = model.fifo::<u64>(&mut sim, "frames", 2);

    let tx = fifo.clone();
    model.spawn_replaying(&mut sim, "producer", cpu, prod_trace.clone(), move |ctx| {
        for i in 0..4_u64 {
            // plain body: no charging at all
            tx.write(ctx, i);
        }
    });
    model.spawn_replaying(&mut sim, "consumer", cpu, cons_trace, move |ctx| {
        for _ in 0..4 {
            let _ = fifo.read(ctx);
            timed_wait(ctx, Time::ns(30));
        }
    });

    let stats = sim.run().unwrap();
    assert_eq!(stats.end_time, live_end, "replay must be bit-identical");
    let report = model.report();
    let live_total: f64 = prod_trace.cycles().iter().sum();
    assert_eq!(report.process("producer").unwrap().total_cycles, live_total);
}

#[test]
fn replay_with_charging_body_still_uses_trace() {
    // Even if the replayed body accidentally runs annotated code, the
    // charges are ignored and the trace wins — charging in replay mode
    // is a hard no-op.
    let table = CostTable::from_pairs([(Op::Add, 1.0)]);
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu", Time::ns(10), table, 0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.spawn_replaying(&mut sim, "p", cpu, Replay::new(vec![40.0]), |_ctx| {
        burn(1_000_000); // ignored
    });
    let stats = sim.run().unwrap();
    assert_eq!(stats.end_time, Time::ns(400), "40 cycles @ 10ns");
}
