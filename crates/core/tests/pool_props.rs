//! Property tests for the session pool's determinism contract: a
//! recycled (reset) slot and a snapshot-forked slot must be
//! bit-identical to a freshly built session — summary, report, trace
//! and produced data — at every parallel-evaluate width, and an
//! errored run must never poison the slot it ran in.

use std::sync::Arc;

use proptest::prelude::*;
use scperf_core::{
    g_i64, CostTable, InstanceLimits, Platform, ResourceId, Session, SessionPool, SimConfig,
    Snapshot,
};
use scperf_kernel::{SimError, Time, TraceMode};
use scperf_sync::Mutex;

fn platform() -> (Platform, ResourceId, ResourceId) {
    let mut p = Platform::new();
    let cpu = p.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 50.0);
    let hw = p.parallel("hw", Time::ns(10), CostTable::asic_hw(), 0.5);
    (p, cpu, hw)
}

fn config(jobs: usize) -> SimConfig {
    SimConfig::new()
        .platform(platform().0)
        .tracing(TraceMode::Unbounded)
        .jobs(jobs)
}

/// The two-stage pipeline under test: `gen` (annotated, on the CPU)
/// streams derived values into `xform` (annotated, on the accelerator),
/// and an untimed sink collects the results. When `snap` carries
/// recorded traces the stages elaborate in replay mode with *plain*
/// bodies computing the same values — the snapshot-fork fast path.
fn elaborate(
    session: &mut Session,
    cpu: ResourceId,
    hw: ResourceId,
    nitems: usize,
    seed: i64,
    snap: Option<&Snapshot>,
) -> Arc<Mutex<Vec<i64>>> {
    let mid = session.fifo::<i64>("mid", 2);
    let out = session.fifo::<i64>("out", 2);
    let collected: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));

    let gen_value = move |i: usize| -> i64 {
        let mut acc = seed;
        for k in 0..4 {
            acc += (i + k) as i64 * 3;
        }
        acc
    };
    let tx = mid.clone();
    match snap.and_then(|s| s.replay("gen")) {
        Some(replay) => {
            session.spawn_replaying("gen", cpu, replay, move |ctx| {
                for i in 0..nitems {
                    tx.write(ctx, gen_value(i));
                }
            });
        }
        None => {
            session.spawn("gen", cpu, move |ctx| {
                for i in 0..nitems {
                    let mut acc = g_i64(seed);
                    for k in 0..4 {
                        acc = acc + g_i64((i + k) as i64) * g_i64(3);
                    }
                    tx.write(ctx, acc.get());
                }
            });
        }
    }

    let rx = mid;
    let tx = out.clone();
    match snap.and_then(|s| s.replay("xform")) {
        Some(replay) => {
            session.spawn_replaying("xform", hw, replay, move |ctx| {
                for _ in 0..nitems {
                    let v = rx.read(ctx);
                    tx.write(ctx, v * 2 - 1);
                }
            });
        }
        None => {
            session.spawn("xform", hw, move |ctx| {
                for _ in 0..nitems {
                    let v = rx.read(ctx);
                    let r = g_i64(v) * g_i64(2) - g_i64(1);
                    tx.write(ctx, r.get());
                }
            });
        }
    }

    let sink = Arc::clone(&collected);
    session.spawn_untimed("sink", move |ctx| {
        for _ in 0..nitems {
            let v = out.read(ctx);
            sink.lock().push(v);
        }
    });
    collected
}

/// Everything a run must reproduce bit for bit.
fn observe(session: &mut Session, collected: &Mutex<Vec<i64>>) -> impl PartialEq + std::fmt::Debug {
    let summary = session.run().expect("determinate pipeline");
    (
        summary,
        session.report(),
        session.take_events().events,
        collected.lock().clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fresh vs reset vs snapshot-forked: identical down to the trace,
    /// for random workload sizes and seeds at jobs ∈ {1, 2, 8}.
    #[test]
    fn fresh_reset_and_forked_sessions_are_bit_identical(
        nitems in 1usize..12,
        seed in -50_i64..50,
        jobs_idx in 0usize..3,
    ) {
        let jobs = [1, 2, 8][jobs_idx];
        let (_, cpu, hw) = platform();

        let mut fresh = config(jobs).build();
        let data = elaborate(&mut fresh, cpu, hw, nitems, seed, None);
        let oracle = observe(&mut fresh, &data);

        // Reset: run an unrelated scenario first so the slot is dirty.
        let mut recycled = config(jobs).build();
        recycled.spawn("other", cpu, |_ctx| {
            let _ = g_i64(5) * g_i64(7);
        });
        recycled.run().expect("warmup scenario");
        recycled.reset();
        let data = elaborate(&mut recycled, cpu, hw, nitems, seed, None);
        prop_assert_eq!(&observe(&mut recycled, &data), &oracle);

        // Forked: first-of-shape records and publishes, the repeat
        // forks the snapshot and replays.
        let pool = SessionPool::new(InstanceLimits::default(), move || config(jobs).build());
        let shape = (nitems as u64) << 32 | (seed + 50) as u64;
        {
            let mut slot = pool.acquire_for_shape(shape).expect("free slot");
            prop_assert!(slot.forked_snapshot().is_none());
            slot.recorder();
            let data = elaborate(&mut slot, cpu, hw, nitems, seed, None);
            prop_assert_eq!(&observe(&mut slot, &data), &oracle);
            let snapshot = Session::snapshot(&mut slot);
            pool.publish_snapshot(shape, snapshot);
        }
        let mut slot = pool.acquire_for_shape(shape).expect("free slot");
        let snap = slot.forked_snapshot().cloned().expect("published snapshot");
        let data = elaborate(&mut slot, cpu, hw, nitems, seed, Some(&snap));
        prop_assert_eq!(&observe(&mut slot, &data), &oracle);
        prop_assert_eq!(pool.stats().hits, 1);
    }
}

#[test]
fn a_non_determinate_run_does_not_poison_its_slot() {
    // Conflicting same-delta signal writes are reported as
    // NonDeterminate under parallel evaluation; the slot that hosted
    // the failed run must come back from the pool reset and produce a
    // run bit-identical to a fresh session.
    let (_, cpu, hw) = platform();
    let pool = SessionPool::new(
        InstanceLimits {
            max_sessions: 1,
            ..InstanceLimits::default()
        },
        || config(4).build(),
    );

    {
        let mut slot = pool.acquire().expect("free slot");
        let sim = slot.sim();
        let s = sim.signal("s", 0_u32);
        let s1 = s.clone();
        let s2 = s;
        sim.spawn("a", move |ctx| s1.write(ctx, 1));
        sim.spawn("b", move |ctx| s2.write(ctx, 2));
        match slot.run() {
            Err(SimError::NonDeterminate { .. }) => {}
            other => panic!("expected NonDeterminate, got {other:?}"),
        }
    }

    let mut fresh = config(4).build();
    let data = elaborate(&mut fresh, cpu, hw, 6, 7, None);
    let oracle = observe(&mut fresh, &data);

    let mut slot = pool.acquire().expect("the slot was recycled");
    let data = elaborate(&mut slot, cpu, hw, 6, 7, None);
    assert_eq!(observe(&mut slot, &data), oracle);
    assert_eq!(pool.stats().resets, 1, "release after the failed run");
}
