//! Reproduction of the paper's Figure 3 worked example.
//!
//! Cost table: `=`:2, `+`:1, `<`:3, `[]`:5, `if`:2.4, call:18.
//! Segment between `ch1.read()` and `ch2.read()`:
//!
//! ```c
//! ch1.read();
//! if (i < 0) i = c + d;    // time += t_if + t_<  (5.4);  += t_= + t_+  (8.4)
//! datai = array[i];        // time += t_= + t_[]  (15.4)
//! datao = func(datai);     // time += t_= + t_fc  (35.4); func adds 40.4 (75.8)
//! ch2.read();
//! ```
//!
//! The paper's running totals: 5.4 → 8.4 → 15.4 → 35.4 → **75.8** cycles.

use scperf_core::{g_call, g_if, CostTable, GArr, Mode, PerfModel, Platform, G};
use scperf_kernel::Simulator;
use scperf_kernel::Time;

/// `func` is constructed to contribute exactly 40.4 cycles with the Figure 3
/// table, *including* its one argument copy (an assign, 2): 1 branch (2.4)
/// + 1 comparison (3) + 5 index (25) + 4 assign (8).
fn func(x: G<i32>) -> G<i32> {
    let scratch = GArr::<i32>::zeroed(8);
    g_if!((x < 0) {});
    let mut last = G::raw(0);
    for i in 0..4 {
        last.assign(scratch.at_raw(i)); // [] + =  per iteration
    }
    let _ = scratch.at_raw(5); // final []
    last
}

#[test]
fn figure3_segment_costs_75_8_cycles() {
    let mut platform = Platform::new();
    // 100 MHz CPU, no RTOS cost so the segment time is pure computation.
    let cpu = platform.sequential("cpu", Time::ns(10), CostTable::figure3(), 0.0);

    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let ch1 = model.fifo::<i32>(&mut sim, "ch1", 1);
    let ch2 = model.fifo::<i32>(&mut sim, "ch2", 1);

    let (ch1_w, ch1_r) = (ch1.clone(), ch1);
    let (ch2_w, ch2_r) = (ch2.clone(), ch2);
    sim.spawn("env", move |ctx| {
        ch1_w.raw().write(ctx, 0);
        ch2_w.raw().write(ctx, 0);
    });
    model.spawn(&mut sim, "proc", cpu, move |ctx| {
        let mut i = G::raw(-1_i32);
        let c = G::raw(20_i32);
        let d = G::raw(22_i32);
        let array = GArr::<i32>::from_vec(vec![7; 8]);
        let mut datai = G::raw(0);
        let mut datao = G::raw(0);

        let _ = ch1_r.read(ctx); // node: segment of interest starts here
        g_if!((i < 0) {
            i.assign(c + d);
        });
        datai.assign(array.at_raw(0));
        datao.assign(g_call!(func(datai)));
        let _ = ch2_r.read(ctx); // node: segment of interest ends here
        let _ = datao;
    });
    sim.run().unwrap();

    let report = model.report();
    let proc = report.process("proc").unwrap();
    let seg = proc
        .segment("ch1.read", "ch2.read")
        .expect("segment ch1.read -> ch2.read recorded");
    assert_eq!(seg.stats.count, 1);
    assert!(
        (seg.stats.total_cycles - 75.8).abs() < 1e-9,
        "expected the paper's 75.8 cycles, got {}",
        seg.stats.total_cycles
    );
    // On the 100 MHz clock that is 758 ns.
    assert_eq!(seg.stats.total_time, Time::ps(758_000));
}

#[test]
fn figure3_condition_false_skips_branch_body() {
    // When the condition does not hold, only t_if + t_< accrue for the if.
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu", Time::ns(10), CostTable::figure3(), 0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let ch1 = model.fifo::<i32>(&mut sim, "ch1", 1);
    let ch2 = model.fifo::<i32>(&mut sim, "ch2", 1);

    let (ch1_w, ch1_r) = (ch1.clone(), ch1);
    let (ch2_w, ch2_r) = (ch2.clone(), ch2);
    sim.spawn("env", move |ctx| {
        ch1_w.raw().write(ctx, 0);
        ch2_w.raw().write(ctx, 0);
    });
    model.spawn(&mut sim, "proc", cpu, move |ctx| {
        let mut i = G::raw(1_i32); // positive: branch body skipped
        let c = G::raw(20_i32);
        let d = G::raw(22_i32);
        let _ = ch1_r.read(ctx);
        g_if!((i < 0) {
            i.assign(c + d);
        });
        let _ = ch2_r.read(ctx);
    });
    sim.run().unwrap();

    let report = model.report();
    let seg = report
        .process("proc")
        .unwrap()
        .segment("ch1.read", "ch2.read")
        .unwrap()
        .stats
        .clone();
    assert!(
        (seg.total_cycles - 5.4).abs() < 1e-9,
        "got {}",
        seg.total_cycles
    );
}
