//! Property tests for the estimator hot path: the flat-TLS fast path,
//! segment-site memoization and verify mode are bit-identical to live
//! estimation across random integral cost tables, hardware `k` values
//! and both resource kinds; fractional tables never replay; and
//! data-dependent keys miss separately.

use std::collections::HashSet;

use proptest::collection::vec;
use proptest::prelude::*;
use scperf_core::{
    g_if, g_loop, g_site, timed_wait, CostTable, EstHotStats, MemoMode, Platform, Report,
    ResourceKind, SimConfig, ALL_OPS, G, OP_COUNT,
};
use scperf_kernel::Time;

/// Builds a cost table from one drawn cost per op (integral when every
/// entry is a whole number).
fn table_from(costs: &[u32], fractional_op: Option<usize>) -> CostTable {
    CostTable::from_pairs(ALL_OPS.iter().enumerate().map(|(i, &op)| {
        let mut c = costs[i] as f64;
        if fractional_op == Some(i) {
            c += 0.5;
        }
        (op, c)
    }))
}

/// Runs one session: a single process executing `segments` copies of a
/// straight-line `g_loop!` region separated by timed waits. Returns the
/// report and the hot-path counters.
fn run_loops(
    kind: ResourceKind,
    table: CostTable,
    k: f64,
    memo: MemoMode,
    legacy: bool,
    trips: usize,
    segments: usize,
) -> (Report, EstHotStats) {
    let mut platform = Platform::new();
    let r = match kind {
        ResourceKind::Sequential => platform.sequential("r0", Time::ns(10), table, 25.0),
        ResourceKind::Parallel => platform.parallel("r0", Time::ns(10), table, k),
        ResourceKind::Environment => unreachable!("not benchmarked"),
    };
    let mut session = SimConfig::new()
        .platform(platform)
        .site_memo(memo)
        .legacy_charging(legacy)
        .build();
    session.spawn("w", r, move |ctx| {
        for _ in 0..segments {
            let mut acc = G::raw(0_i64);
            g_loop!(i in 0..trips => {
                acc.assign(acc + G::raw(i as i64) * G::raw(3));
            });
            std::hint::black_box(acc.get());
            timed_wait(ctx, Time::ns(50));
        }
    });
    session.run().expect("session runs");
    (session.report(), session.model().hot_stats())
}

/// Runs one session over `values`, charging through a site keyed by the
/// sign of each value, whose body branches on that same sign — correct
/// keyed memoization of data-dependent control flow.
fn run_keyed(memo: MemoMode, values: Vec<i32>) -> (Report, EstHotStats) {
    let mut platform = Platform::new();
    let r = platform.sequential("r0", Time::ns(10), CostTable::risc_sw(), 25.0);
    let mut session = SimConfig::new().platform(platform).site_memo(memo).build();
    session.spawn("w", r, move |_ctx| {
        let mut acc = G::raw(0_i32);
        for &v in &values {
            g_site!(((v >= 0) as u64) {
                let x = G::raw(v);
                g_if!((x >= 0) {
                    acc.assign(acc + x * G::raw(2));
                } else {
                    acc.assign(acc - x);
                });
            });
        }
        std::hint::black_box(acc.get());
    });
    session.run().expect("session runs");
    (session.report(), session.model().hot_stats())
}

/// Runs two processes contending for one sequential resource through a
/// FIFO, with attribution toggled. Returns the summary and report.
fn run_contended(
    attribution: bool,
    table: CostTable,
    trips: usize,
    frames: usize,
) -> (scperf_kernel::SimSummary, Report) {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), table, 25.0);
    let mut session = SimConfig::new()
        .platform(platform)
        .attribution(attribution)
        .build();
    let ch = session.fifo::<i64>("link", 2);
    let tx = ch.clone();
    session.spawn("prod", cpu, move |ctx| {
        for f in 0..frames {
            let mut acc = G::raw(0_i64);
            g_loop!(i in 0..trips => {
                acc.assign(acc + G::raw((f + i) as i64));
            });
            tx.write(ctx, acc.get());
        }
    });
    session.spawn("cons", cpu, move |ctx| {
        let mut sum = G::raw(0_i64);
        for _ in 0..frames {
            let v = ch.read(ctx);
            sum.assign(sum + G::raw(v));
        }
        std::hint::black_box(sum.get());
    });
    let summary = session.run().expect("session runs");
    (summary, session.report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Live, memoized, verify and legacy estimation agree bit-for-bit
    /// on random integral tables, both resource kinds and random k.
    #[test]
    fn all_charging_modes_agree_on_integral_tables(
        costs in vec(0_u32..=15, OP_COUNT..=OP_COUNT),
        k100 in 0_u32..=100,
        trips in 1_usize..40,
        parallel in any::<bool>(),
    ) {
        let kind = if parallel {
            ResourceKind::Parallel
        } else {
            ResourceKind::Sequential
        };
        let table = table_from(&costs, None);
        let k = k100 as f64 / 100.0;
        let (live, live_hot) =
            run_loops(kind, table.clone(), k, MemoMode::Off, false, trips, 3);
        let (memoized, memo_hot) =
            run_loops(kind, table.clone(), k, MemoMode::Replay, false, trips, 3);
        let (verified, _) =
            run_loops(kind, table.clone(), k, MemoMode::Verify, false, trips, 3);
        let (legacy, legacy_hot) =
            run_loops(kind, table, k, MemoMode::Off, true, trips, 3);
        prop_assert_eq!(&memoized, &live, "replay diverged from live");
        prop_assert_eq!(&verified, &live, "verify diverged from live");
        prop_assert_eq!(&legacy, &live, "legacy diverged from live");
        prop_assert_eq!(live_hot.site_hits, 0);
        prop_assert_eq!(legacy_hot.fast_charges, 0);
        if parallel {
            // Parallel resources never memoize (ceiled max/acc tracking
            // is not delta-replayable).
            prop_assert_eq!(memo_hot.site_hits, 0);
        } else {
            // `g_loop!` is one whole-loop region: 3 segment executions,
            // one recording miss on the first, the other two replay the
            // compiled program (the trip count is folded into the key,
            // and it is the same in every segment here).
            prop_assert_eq!(memo_hot.site_misses, 1);
            prop_assert_eq!(memo_hot.site_hits, 2);
        }
    }

    /// A single fractional cost disables replay for the whole table —
    /// float accumulation order must stay exactly the live order.
    #[test]
    fn fractional_tables_never_replay(
        costs in vec(0_u32..=15, OP_COUNT..=OP_COUNT),
        frac_op in 0_usize..OP_COUNT,
        trips in 1_usize..20,
    ) {
        let table = table_from(&costs, Some(frac_op));
        let (live, _) = run_loops(
            ResourceKind::Sequential, table.clone(), 0.0, MemoMode::Off, false, trips, 2,
        );
        let (memoized, hot) = run_loops(
            ResourceKind::Sequential, table, 0.0, MemoMode::Replay, false, trips, 2,
        );
        prop_assert_eq!(&memoized, &live);
        prop_assert_eq!(hot.site_hits, 0, "fractional table must stay live");
        prop_assert_eq!(hot.site_misses, 0);
    }

    /// Attribution accounting is measurement-only: a contended
    /// two-process model produces a bit-identical summary and report
    /// (modulo the utilization section itself) whether attribution is
    /// on or off, and the utilization section names the shared
    /// sequential resource with real contention.
    #[test]
    fn attribution_on_and_off_are_bit_identical(
        costs in vec(0_u32..=15, OP_COUNT..=OP_COUNT),
        trips in 1_usize..32,
        frames in 1_usize..8,
    ) {
        let table = table_from(&costs, None);
        let (s_on, r_on) = run_contended(true, table.clone(), trips, frames);
        let (s_off, r_off) = run_contended(false, table, trips, frames);
        prop_assert_eq!(s_on, s_off, "attribution changed the schedule");
        prop_assert!(r_off.utilization.is_none());
        let mut stripped = r_on.clone();
        stripped.utilization = None;
        prop_assert_eq!(&stripped, &r_off, "attribution changed the report");
        let u = r_on.utilization.expect("utilization section present");
        prop_assert_eq!(u.total_time, s_on.end_time);
        let bottleneck = u.bottleneck().expect("cpu0 is sequential");
        prop_assert_eq!(&bottleneck.name, "cpu0");
    }

    /// Data-dependent control flow, keyed correctly: each distinct key
    /// misses once, everything else hits, and the report still matches
    /// live estimation bit-for-bit.
    #[test]
    fn data_dependent_keys_miss_separately(values in vec(-100_i32..=100, 1..60)) {
        let distinct: HashSet<bool> = values.iter().map(|&v| v >= 0).collect();
        let (live, _) = run_keyed(MemoMode::Off, values.clone());
        let (memoized, hot) = run_keyed(MemoMode::Replay, values.clone());
        let (verified, _) = run_keyed(MemoMode::Verify, values.clone());
        prop_assert_eq!(&memoized, &live);
        prop_assert_eq!(&verified, &live);
        prop_assert_eq!(hot.site_misses, distinct.len() as u64);
        prop_assert_eq!(hot.site_hits, (values.len() - distinct.len()) as u64);
    }
}
