//! Property tests for the cost-program layer: live estimation, locally
//! compiled replay, and replay from a serialized-then-deserialized
//! [`ProgramSet`] are bit-identical over random integral cost tables,
//! nested named regions and data-dependent branches; a fingerprint
//! mismatch rejects the warm set and falls back to live recording
//! without changing a single bit of the result.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use scperf_core::{
    g_if, g_loop, g_site, table_fingerprint, timed_wait, CostTable, EstHotStats, MemoMode,
    Platform, ProgramSet, Report, SimConfig, ALL_OPS, G, OP_COUNT,
};
use scperf_kernel::Time;

/// Builds an integral cost table from one drawn cost per op.
fn table_from(costs: &[u32]) -> CostTable {
    CostTable::from_pairs(
        ALL_OPS
            .iter()
            .enumerate()
            .map(|(i, &op)| (op, costs[i] as f64)),
    )
}

/// Runs one session of the reference workload — an outer branch-keyed
/// `g_site!` per value enclosing a named `g_loop!` (nested structure:
/// the outer program records the loop as a `Call`), plus a charged
/// branch on the value's sign — and returns the report, the hot-path
/// counters and the harvested program set.
fn run_workload(
    table: CostTable,
    memo: MemoMode,
    warm: Option<Arc<ProgramSet>>,
    values: &[i32],
    trips: usize,
) -> (Report, EstHotStats, ProgramSet) {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), table, 25.0);
    let mut config = SimConfig::new().platform(platform).site_memo(memo);
    if let Some(set) = warm {
        config = config.program_set(set);
    }
    let mut session = config.build();
    let values = values.to_vec();
    session.spawn("w", cpu, move |ctx| {
        let mut acc = G::raw(0_i64);
        for &v in &values {
            g_site!(((v >= 0) as u64) {
                g_loop!(i in 0..trips => {
                    acc.assign(acc + G::raw(i as i64) * G::raw(3));
                });
                let x = G::raw(v as i64);
                g_if!((x >= 0) {
                    acc.assign(acc + x * G::raw(2));
                } else {
                    acc.assign(acc - x);
                });
            });
            timed_wait(ctx, Time::ns(50));
        }
        std::hint::black_box(acc.get());
    });
    session.run().expect("session runs");
    (
        session.report(),
        session.model().hot_stats(),
        session.programs(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Live, locally compiled, warm-replayed and warm-verified runs all
    /// produce bit-identical reports, and the program set survives a
    /// serialize/deserialize round trip byte-for-byte.
    #[test]
    fn live_compiled_and_serialized_replay_are_bit_identical(
        costs in vec(0_u32..=15, OP_COUNT..=OP_COUNT),
        values in vec(-100_i32..=100, 1..24),
        trips in 1_usize..12,
    ) {
        let table = table_from(&costs);
        let (live, live_hot, _) =
            run_workload(table.clone(), MemoMode::Off, None, &values, trips);
        prop_assert_eq!(live_hot.site_hits, 0);

        // Local record + replay: bit-identical, and the named regions
        // harvest into a serializable program set.
        let (memoized, memo_hot, set) =
            run_workload(table.clone(), MemoMode::Replay, None, &values, trips);
        prop_assert_eq!(&memoized, &live, "local replay diverged from live");
        prop_assert!(memo_hot.site_misses > 0);
        prop_assert!(!set.is_empty(), "named sites must harvest programs");
        prop_assert_eq!(set.table_fp(), table_fingerprint(&table));

        // The wire encoding is deterministic and round-trips exactly.
        let bytes = set.to_bytes();
        let decoded = ProgramSet::from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(decoded.len(), set.len());
        prop_assert_eq!(decoded.to_bytes(), bytes, "encoding not canonical");

        // A fresh process warm-started from the decoded set replays
        // without ever recording, still bit-identical.
        let warm = Arc::new(decoded);
        let (replayed, warm_hot, _) = run_workload(
            table.clone(), MemoMode::Replay, Some(warm.clone()), &values, trips,
        );
        prop_assert_eq!(&replayed, &live, "warm replay diverged from live");
        prop_assert!(warm_hot.prog_warm_hits > 0, "warm set never consulted");
        prop_assert_eq!(warm_hot.site_misses, 0, "warm set should cover every site");
        prop_assert_eq!(warm_hot.prog_rejects, 0);

        // Verify mode re-executes each covered region live and asserts
        // the warm program charges the same bits (panics on mismatch).
        let (verified, _, _) =
            run_workload(table, MemoMode::Verify, Some(warm), &values, trips);
        prop_assert_eq!(&verified, &live, "warm verify diverged from live");
    }

    /// A warm set fingerprinted for a different cost table is rejected
    /// at process start: the run records live instead and the result is
    /// bit-identical to a cold run.
    #[test]
    fn fingerprint_mismatch_rejects_warm_set_and_falls_back_live(
        costs in vec(0_u32..=15, OP_COUNT..=OP_COUNT),
        delta in 1_u32..=7,
        op_idx in 0_usize..OP_COUNT,
        values in vec(-100_i32..=100, 1..16),
        trips in 1_usize..8,
    ) {
        let table = table_from(&costs);
        let mut other_costs = costs.clone();
        other_costs[op_idx] += delta; // differs in at least one op
        let other = table_from(&other_costs);
        prop_assert!(table_fingerprint(&other) != table_fingerprint(&table));

        // Harvest programs under the *other* table...
        let (_, _, stale) =
            run_workload(other, MemoMode::Replay, None, &values, trips);
        prop_assert!(!stale.is_empty());

        // ...and warm-start a run under `table` with them: the set is
        // dropped (counted), recording proceeds live, results match a
        // cold run exactly.
        let (cold, _, _) =
            run_workload(table.clone(), MemoMode::Replay, None, &values, trips);
        let (warmed, hot, _) = run_workload(
            table, MemoMode::Replay, Some(Arc::new(stale)), &values, trips,
        );
        prop_assert_eq!(&warmed, &cold, "stale warm set changed the result");
        prop_assert!(hot.prog_rejects > 0, "mismatch must be counted");
        prop_assert_eq!(hot.prog_warm_hits, 0);
        prop_assert!(hot.site_misses > 0, "must have recorded live");
    }
}
