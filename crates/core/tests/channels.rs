//! Integration tests for the instrumented channel wrappers and the
//! auxiliary reporting features.

use scperf_core::{
    charge_op, g_i32, timed_wait, timed_wait_labeled, CostTable, Mode, Op, PerfModel, Platform,
    ProcessGraph,
};
use scperf_kernel::{Simulator, Time};

fn one_cpu_platform() -> (Platform, scperf_core::ResourceId) {
    let mut p = Platform::new();
    let cpu = p.sequential(
        "cpu",
        Time::ns(10),
        CostTable::from_pairs([(Op::Add, 1.0)]),
        0.0,
    );
    (p, cpu)
}

#[test]
fn rendezvous_wrapper_marks_segments_and_synchronizes() {
    let (platform, cpu) = one_cpu_platform();
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let ch = model.rendezvous::<i32>(&mut sim, "sync");
    let (w, r) = (ch.clone(), ch);
    model.spawn(&mut sim, "writer", cpu, move |ctx| {
        for i in 0..5 {
            for _ in 0..100 {
                charge_op(Op::Add);
            }
            w.write(ctx, i);
        }
    });
    sim.spawn("reader", move |ctx| {
        for i in 0..5 {
            assert_eq!(r.read(ctx), i);
        }
    });
    sim.run().unwrap();
    let report = model.report();
    let writer = report.process("writer").unwrap();
    // 5 segments ending at sync.write + the exit segment.
    let seg = writer.segment("sync.write", "sync.write").unwrap();
    assert_eq!(seg.stats.count, 4);
    assert_eq!(seg.stats.total_cycles, 400.0);
    assert!(writer.segment("entry", "sync.write").is_some());
    assert!(writer.segment("sync.write", "exit").is_some());
}

#[test]
fn signal_wrapper_write_is_a_node_but_read_is_not() {
    let (platform, cpu) = one_cpu_platform();
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let s = model.signal(&mut sim, "level", 0_i32);
    let sw = s.clone();
    model.spawn(&mut sim, "driver", cpu, move |ctx| {
        for _ in 0..50 {
            charge_op(Op::Add);
        }
        sw.write(ctx, 7);
        // Reads do not end segments.
        let _ = sw.read();
        for _ in 0..30 {
            charge_op(Op::Add);
        }
        timed_wait(ctx, Time::ZERO);
    });
    sim.run().unwrap();
    let report = model.report();
    let p = report.process("driver").unwrap();
    let to_write = p.segment("entry", "level.write").unwrap();
    assert_eq!(to_write.stats.total_cycles, 50.0);
    let to_wait = p.segment("level.write", "wait").unwrap();
    assert_eq!(to_wait.stats.total_cycles, 30.0);
    assert_eq!(s.read(), 7);
}

#[test]
fn labeled_waits_become_distinct_nodes() {
    let (platform, cpu) = one_cpu_platform();
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.spawn(&mut sim, "p", cpu, move |ctx| {
        for _ in 0..3 {
            charge_op(Op::Add);
            timed_wait_labeled(ctx, Time::ns(5), "phase_a");
            charge_op(Op::Add);
            charge_op(Op::Add);
            timed_wait_labeled(ctx, Time::ns(5), "phase_b");
        }
    });
    sim.run().unwrap();
    let report = model.report();
    let p = report.process("p").unwrap();
    let a_to_b = p.segment("wait:phase_a", "wait:phase_b").unwrap();
    assert_eq!(a_to_b.stats.count, 3);
    assert_eq!(a_to_b.stats.total_cycles, 6.0);
    let b_to_a = p.segment("wait:phase_b", "wait:phase_a").unwrap();
    assert_eq!(b_to_a.stats.count, 2);
    // The graph has both wait nodes.
    let dot = ProcessGraph::from_report(p).to_dot();
    assert!(dot.contains("wait:phase_a"));
    assert!(dot.contains("wait:phase_b"));
}

#[test]
fn capture_csv_and_matlab_round_trip() {
    let (platform, cpu) = one_cpu_platform();
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let cp = model.capture_point("sample");
    let cp2 = cp.clone();
    model.spawn(&mut sim, "p", cpu, move |ctx| {
        for i in 0..4 {
            timed_wait(ctx, Time::us(1));
            cp2.capture_value_if(ctx, i % 2 == 0, i as f64);
        }
    });
    sim.run().unwrap();
    let lists = model.captures();
    let list = &lists[0];
    assert_eq!(list.events.len(), 2); // conditional: i = 0, 2
    let csv = list.to_csv();
    assert!(csv.starts_with("time_ns,value\n"));
    assert!(csv.contains("1000,0"));
    assert!(csv.contains("3000,2"));
    let m = list.to_matlab();
    assert!(m.contains("sample_t = [1000, 3000];"));
    assert!(m.contains("sample_v = [0, 2];"));
}

#[test]
fn instrumented_fifo_between_sw_and_hw_processes() {
    let mut platform = Platform::new();
    let cpu = platform.sequential(
        "cpu",
        Time::ns(10),
        CostTable::from_pairs([(Op::Add, 1.0)]),
        20.0,
    );
    let hw = platform.parallel(
        "hw",
        Time::ns(10),
        CostTable::from_pairs([(Op::Add, 1.0)]),
        1.0,
    );
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let ch = model.fifo::<i32>(&mut sim, "data", 2);
    let (tx, rx) = (ch.clone(), ch);
    model.spawn(&mut sim, "producer_sw", cpu, move |ctx| {
        for i in 0..10 {
            let mut v = g_i32(i);
            for _ in 0..100 {
                v = v + 0;
            }
            tx.write(ctx, v.get());
        }
    });
    model.spawn(&mut sim, "consumer_hw", hw, move |ctx| {
        let mut sum = g_i32(0);
        for _ in 0..10 {
            sum = sum + rx.read(ctx);
        }
        assert_eq!(sum.get(), 45);
    });
    let summary = sim.run().unwrap();
    let report = model.report();
    // Producer: 10 data segments of 100 adds (g_i32's assign costs 0 here).
    let producer = report.process("producer_sw").unwrap();
    assert_eq!(producer.total_cycles, 1000.0);
    assert!(producer.rtos_time > Time::ZERO);
    // Consumer on HW: k = 1 → worst case = sequential sum of its adds.
    let consumer = report.process("consumer_hw").unwrap();
    assert!(consumer.total_cycles >= 10.0);
    assert_eq!(consumer.rtos_time, Time::ZERO);
    // The simulated time is dominated by the SW side.
    assert!(summary.end_time >= Time::us(10));
}

#[test]
fn vcd_export_from_an_instrumented_model() {
    let (platform, cpu) = one_cpu_platform();
    let mut sim = Simulator::new();
    sim.enable_tracing();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let s = model.signal(&mut sim, "beat", 0_i32);
    let sw = s.clone();
    model.spawn(&mut sim, "p", cpu, move |ctx| {
        for i in 1..=3 {
            for _ in 0..100 {
                charge_op(Op::Add);
            }
            sw.write(ctx, i);
            timed_wait(ctx, Time::ZERO);
        }
    });
    sim.run().unwrap();
    let vcd = scperf_kernel::vcd::trace_to_vcd(&sim.take_trace(), "1ns");
    assert!(vcd.contains("$var wire 32 ! beat $end"));
    // Three value changes at 1us, 2us, 3us (100 cycles @ 10ns each).
    assert!(vcd.contains("#1000"));
    assert!(vcd.contains("#2000"));
    assert!(vcd.contains("#3000"));
}

#[test]
fn report_and_instantaneous_csv_exports() {
    let (platform, cpu) = one_cpu_platform();
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.record_instantaneous();
    model.spawn(&mut sim, "p", cpu, move |ctx| {
        for n in [5_u64, 9] {
            for _ in 0..n {
                charge_op(Op::Add);
            }
            timed_wait(ctx, Time::ZERO);
        }
    });
    sim.run().unwrap();
    let report = model.report();
    let csv = report.to_csv();
    assert!(csv.starts_with("process,resource,kind,cycles,time_ns,rtos_ns,segments\n"));
    assert!(csv.contains("p,cpu,Sequential,14,140,0,3"));
    let p = report.process("p").unwrap();
    let inst = p.instantaneous_csv(|n| model.node_label(n));
    assert!(inst.starts_with("time_ns,from,to,cycles,dur_ns\n"));
    assert!(inst.contains("entry,wait,5"));
    assert!(inst.contains("wait,wait,9"));
    assert!(inst.contains("wait,exit,0"));
}
