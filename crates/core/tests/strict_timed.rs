//! Scenario tests for §4 global analysis: strict-timed back-annotation,
//! sequential-resource serialization (Figure 5's sg1/sg2), parallel
//! overlap (sg4 ∥ sg5), and RTOS overhead accounting.

use scperf_core::{
    charge_op, g_i64, timed_wait, CostTable, Mode, Op, PerfModel, Platform, ResourceId,
};
use scperf_kernel::{Simulator, Time};

/// A table where one Add costs exactly 1 cycle and nothing else costs
/// anything, making expected times trivial to compute by hand.
fn unit_add_table() -> CostTable {
    CostTable::from_pairs([(Op::Add, 1.0)])
}

/// Charges exactly `n` cycles into the running segment.
fn burn(n: u64) {
    for _ in 0..n {
        charge_op(Op::Add);
    }
}

fn platform_cpu(rtos: f64) -> (Platform, ResourceId) {
    let mut p = Platform::new();
    let cpu = p.sequential("cpu", Time::ns(10), unit_add_table(), rtos);
    (p, cpu)
}

#[test]
fn single_process_sleeps_its_segment_time() {
    let (platform, cpu) = platform_cpu(0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.spawn(&mut sim, "p", cpu, |ctx| {
        burn(100); // 100 cycles @ 10ns = 1us, annotated at process exit
        assert_eq!(ctx.now(), Time::ZERO, "annotation happens at the node");
    });
    let s = sim.run().unwrap();
    assert_eq!(s.end_time, Time::us(1));
}

#[test]
fn estimate_only_keeps_simulation_untimed() {
    let (platform, cpu) = platform_cpu(0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::EstimateOnly);
    model.spawn(&mut sim, "p", cpu, |_ctx| {
        burn(100);
    });
    let s = sim.run().unwrap();
    assert_eq!(s.end_time, Time::ZERO);
    // … but the estimate is still collected.
    let report = model.report();
    assert_eq!(report.process("p").unwrap().total_cycles, 100.0);
}

#[test]
fn two_processes_on_one_cpu_serialize() {
    // Figure 5: segments sg1 and sg2 execute in the same delta cycle
    // untimed, but are scheduled sequentially on the shared CPU.
    let (platform, cpu) = platform_cpu(0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let done = std::sync::Arc::new(scperf_sync::Mutex::new(Vec::new()));
    for (name, cycles) in [("p2", 300_u64), ("p3", 500_u64)] {
        let done = std::sync::Arc::clone(&done);
        model.spawn(&mut sim, name, cpu, move |ctx| {
            burn(cycles);
            timed_wait(ctx, Time::ZERO); // node: back-annotate here
            done.lock().push((name, ctx.now()));
        });
    }
    let s = sim.run().unwrap();
    // p2 occupies [0, 3us); p3 must wait and occupies [3us, 8us).
    let order = done.lock().clone();
    assert_eq!(order[0], ("p2", Time::us(3)));
    assert_eq!(order[1], ("p3", Time::us(8)));
    assert_eq!(s.end_time, Time::us(8));
}

#[test]
fn processes_on_parallel_resources_overlap() {
    // Figure 5: sg4 (HW) runs in parallel with sg5 (SW).
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu", Time::ns(10), unit_add_table(), 0.0);
    let hw = platform.parallel("hw", Time::ns(10), unit_add_table(), 0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.spawn(&mut sim, "sw_proc", cpu, |_ctx| {
        burn(400);
    });
    model.spawn(&mut sim, "hw_proc", hw, |_ctx| {
        burn(400);
    });
    let s = sim.run().unwrap();
    // Overlapping, not serialized: total is max(4us, 4us), not 8us.
    assert_eq!(s.end_time, Time::us(4));
}

#[test]
fn rtos_cost_is_charged_per_node() {
    // 3 nodes for the process below: two waits plus process exit,
    // each charging 50 RTOS cycles = 500ns.
    let (platform, cpu) = platform_cpu(50.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.spawn(&mut sim, "p", cpu, |ctx| {
        timed_wait(ctx, Time::ZERO);
        timed_wait(ctx, Time::ZERO);
    });
    let s = sim.run().unwrap();
    assert_eq!(s.end_time, Time::ns(1500));
    let report = model.report();
    let p = report.process("p").unwrap();
    assert_eq!(p.rtos_time, Time::ns(1500));
    assert_eq!(p.total_time, Time::ZERO); // no computation, only RTOS
    let cpu_report = &report.resources[0];
    assert_eq!(cpu_report.rtos_time, Time::ns(1500));
    assert_eq!(cpu_report.busy_time, Time::ns(1500));
}

#[test]
fn arbitration_loop_handles_resource_stealing() {
    // Three processes race for one CPU; total busy time must be the sum of
    // all segment times and no two occupations overlap.
    let (platform, cpu) = platform_cpu(0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let spans = std::sync::Arc::new(scperf_sync::Mutex::new(Vec::new()));
    for (i, cycles) in [700_u64, 200, 400].into_iter().enumerate() {
        let spans = std::sync::Arc::clone(&spans);
        model.spawn(&mut sim, format!("p{i}"), cpu, move |ctx| {
            burn(cycles);
            timed_wait(ctx, Time::ZERO);
            spans.lock().push((ctx.now(), cycles));
        });
    }
    let s = sim.run().unwrap();
    // 700 + 200 + 400 cycles = 13us in total.
    assert_eq!(s.end_time, Time::us(13));
    // End times must be cumulative sums in pid order (all were runnable at
    // time zero, so the CPU serves them in deterministic spawn order).
    let spans = spans.lock().clone();
    assert_eq!(spans[0].0, Time::us(7));
    assert_eq!(spans[1].0, Time::us(9));
    assert_eq!(spans[2].0, Time::us(13));
}

#[test]
fn hw_k_weight_interpolates_segment_time() {
    // Segment: chain of 4 dependent adds plus 4 independent adds.
    // T_min (critical path) = 4 cycles, T_max (single ALU) = 8 cycles.
    let run = |k: f64| -> Time {
        let mut platform = Platform::new();
        let hw = platform.parallel("hw", Time::ns(10), unit_add_table(), k);
        let mut sim = Simulator::new();
        let model = PerfModel::new(platform, Mode::StrictTimed);
        model.spawn(&mut sim, "p", hw, |_ctx| {
            let mut chain = g_i64(0);
            let one = scperf_core::G::raw(1_i64);
            // g_i64 charges Assign which costs 0 in this table.
            for _ in 0..4 {
                chain = chain + one;
            }
            let mut indep = Vec::new();
            for _ in 0..4 {
                indep.push(one + one);
            }
            let _ = (chain, indep);
        });
        sim.run().unwrap().end_time
    };
    assert_eq!(run(0.0), Time::ns(40)); // best case: critical path
    assert_eq!(run(1.0), Time::ns(80)); // worst case: single ALU
    assert_eq!(run(0.5), Time::ns(60)); // weighted mean
}

#[test]
fn environment_processes_are_not_analyzed() {
    let mut platform = Platform::new();
    let env = platform.environment("testbench");
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.spawn(&mut sim, "tb", env, |_ctx| {
        burn(100_000);
    });
    let s = sim.run().unwrap();
    assert_eq!(s.end_time, Time::ZERO);
    let report = model.report();
    assert_eq!(report.process("tb").unwrap().total_cycles, 0.0);
}

#[test]
fn capture_points_record_strict_times() {
    let (platform, cpu) = platform_cpu(0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let cp = model.capture_point("beat");
    model.spawn(&mut sim, "p", cpu, move |ctx| {
        for i in 0..3 {
            burn(100);
            timed_wait(ctx, Time::ZERO);
            cp.capture_value(ctx, i as f64);
        }
    });
    sim.run().unwrap();
    let lists = model.captures();
    assert_eq!(lists.len(), 1);
    let beat = &lists[0];
    let times: Vec<Time> = beat.events.iter().map(|e| e.at).collect();
    assert_eq!(times, vec![Time::us(1), Time::us(2), Time::us(3)]);
    assert_eq!(beat.mean_interval(), Some(Time::us(1)));
    assert!(beat.to_matlab().contains("beat_t = [1000, 2000, 3000];"));
}

#[test]
fn segment_min_max_track_data_dependence() {
    // A data-dependent segment: iteration count varies per activation.
    let (platform, cpu) = platform_cpu(0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    model.record_instantaneous();
    model.spawn(&mut sim, "p", cpu, |ctx| {
        for n in [10_u64, 50, 30] {
            burn(n);
            timed_wait(ctx, Time::ZERO);
        }
    });
    sim.run().unwrap();
    let report = model.report();
    let p = report.process("p").unwrap();
    let seg = p.segment("wait", "wait").unwrap();
    assert_eq!(seg.stats.count, 2); // 50 and 30 (first was entry→wait)
    assert_eq!(seg.stats.min_cycles, 30.0);
    assert_eq!(seg.stats.max_cycles, 50.0);
    let entry_seg = p.segment("entry", "wait").unwrap();
    assert_eq!(entry_seg.stats.total_cycles, 10.0);
    assert_eq!(p.instantaneous.len(), 4); // 3 waits + exit
}
