//! The `scperf-serve` binary: JSON-lines simulation service on
//! stdin/stdout and, optionally, a TCP listener.
//!
//! ```text
//! scperf-serve [--workers N] [--queue N] [--retry-after-ms N]
//!              [--no-cache] [--flight-recorder N] [--pool-sessions N]
//!              [--tcp ADDR] [--no-stdio]
//! ```
//!
//! `--pool-sessions 0` disables session pooling (each request builds a
//! fresh session); without the flag the pool is sized to `workers + 1`.
//!
//! With `--tcp` both frontends run concurrently over one shared worker
//! pool; EOF or a `shutdown` op on either side stops the whole service
//! after a graceful drain.

use std::process::ExitCode;
use std::sync::Arc;

use scperf_serve::{Service, ServiceConfig, TcpServer};

struct Args {
    config: ServiceConfig,
    tcp: Option<String>,
    stdio: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: scperf-serve [--workers N] [--queue N] [--retry-after-ms N] \
         [--no-cache] [--flight-recorder N] [--pool-sessions N] [--tcp ADDR] \
         [--no-stdio]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        config: ServiceConfig::default(),
        tcp: None,
        stdio: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--workers" => {
                args.config.workers = value("--workers").parse().unwrap_or_else(|_| usage())
            }
            "--queue" => {
                args.config.queue_capacity = value("--queue").parse().unwrap_or_else(|_| usage())
            }
            "--retry-after-ms" => {
                args.config.retry_after_ms = value("--retry-after-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--no-cache" => args.config.use_cache = false,
            "--pool-sessions" => {
                args.config.pool_sessions =
                    Some(value("--pool-sessions").parse().unwrap_or_else(|_| usage()))
            }
            "--flight-recorder" => {
                args.config.flight_recorder = value("--flight-recorder")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--tcp" => args.tcp = Some(value("--tcp")),
            "--no-stdio" => args.stdio = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.config.workers == 0 {
        eprintln!("--workers must be at least 1");
        usage()
    }
    if !args.stdio && args.tcp.is_none() {
        eprintln!("nothing to serve: --no-stdio without --tcp");
        usage()
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let service = Arc::new(Service::new(args.config.clone()));
    eprintln!(
        "scperf-serve: {} workers, queue capacity {}, cache {}, pool {}",
        args.config.workers,
        args.config.queue_capacity,
        if args.config.use_cache { "on" } else { "off" },
        match args.config.pool_sessions {
            Some(0) => "off".to_string(),
            Some(n) => format!("{n} slots"),
            None => format!("{} slots", args.config.workers + 1),
        }
    );

    let mut tcp_thread = None;
    let mut tcp_stop = None;
    if let Some(addr) = &args.tcp {
        let server = match TcpServer::bind(addr.as_str(), Arc::clone(&service)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("scperf-serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("scperf-serve: listening on {}", server.local_addr());
        tcp_stop = Some(server.stop_handle());
        tcp_thread = Some(std::thread::spawn(move || server.run()));
    }

    if args.stdio {
        scperf_serve::stdio::run_stdio(&service);
        // stdio ended (EOF or shutdown op): take the TCP side down too.
        if let Some(stop) = &tcp_stop {
            stop.stop();
        }
    }
    if let Some(t) = tcp_thread {
        let _ = t.join();
    }
    service.drain();
    eprintln!("scperf-serve: drained, bye");
    ExitCode::SUCCESS
}
