//! A minimal JSON *parser* (no external deps).
//!
//! The workspace's [`scperf_obs::json::JsonWriter`] covers the emit
//! side; this module covers the parse side for the service's
//! JSON-lines request protocol. It is a strict RFC 8259 recursive
//! descent parser over a single document: no trailing garbage, no
//! comments, no NaN/Infinity literals (a non-finite number therefore
//! can never even *reach* the request validator — anything non-finite
//! in a request is a parse error at the wire).

use std::fmt;

/// A parsed JSON value.
///
/// Object keys keep their document order (insertion-ordered pairs, not
/// a map); duplicate keys are rejected at parse time so `get` is
/// unambiguous.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number with an exact `u64` value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is a JSON object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting ceiling: a hostile request must not be able to blow the
/// worker's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let s = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                digits(self);
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("digits required after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("digits required in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"xs":[1,2,{"k":"v"}],"b":false}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Json::Bool(false)));
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "NaN",
            "Infinity",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\"\x01\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn integer_accessor_is_exact() {
        assert_eq!(parse("4").unwrap().as_u64(), Some(4));
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn roundtrips_the_obs_writer() {
        let mut w = scperf_obs::json::JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.value_str("vo\"coder");
        w.key("xs");
        w.begin_array();
        w.value_f64(0.125);
        w.value_i64(-3);
        w.end_array();
        w.end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("vo\"coder"));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap()[0], Json::Num(0.125));
    }
}
