//! The TCP frontend: the same JSON-lines protocol on a listener
//! socket.
//!
//! Connections — not individual requests — are the unit of pooled work
//! here: each accepted connection becomes one worker-pool job that
//! reads request lines and answers them *inline* on that worker. This
//! bounds the service's total concurrency (simulations *and*
//! connection handling) by the one worker pool, with no
//! thread-per-connection growth, and means a saturated service refuses
//! new connections at accept time with a `queue_full` line instead of
//! accepting work it cannot start.
//!
//! Within a connection the protocol is strictly request/response in
//! order; concurrency comes from multiple connections (up to the
//! worker count) being served at once.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::render;
use crate::service::{Disposition, Service};

/// A bound TCP server; [`TcpServer::run`] accepts until stopped.
pub struct TcpServer {
    listener: TcpListener,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.listener.local_addr())
            .finish_non_exhaustive()
    }
}

/// Stops a running [`TcpServer`] from another thread.
#[derive(Debug, Clone)]
pub struct StopHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl StopHandle {
    /// Signals the accept loop to stop and wakes it up.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The listener blocks in accept(); a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7077"`; port 0 picks a free
    /// port).
    ///
    /// # Errors
    ///
    /// Any `io::Error` from binding the listener.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<Service>) -> std::io::Result<TcpServer> {
        Ok(TcpServer {
            listener: TcpListener::bind(addr)?,
            service,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener is bound")
    }

    /// A handle that can stop the accept loop.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            addr: self.local_addr(),
            stop: Arc::clone(&self.stop),
        }
    }

    /// Accepts connections until stopped (by a [`StopHandle`] or a
    /// `shutdown` op on any connection), then drains the service.
    pub fn run(self) {
        let stop = Arc::clone(&self.stop);
        for stream in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if let Err((err, retry)) = self.service.admit(1) {
                let mut stream = stream;
                let _ = writeln!(stream, "{}", render::error(None, &err, retry));
                continue;
            }
            let service = Arc::clone(&self.service);
            let handle = self.stop_handle();
            let submitted = self
                .service
                .submit_job(move || handle_connection(&service, stream, &handle));
            if !submitted {
                break;
            }
        }
        self.service.drain();
    }
}

/// How often an idle connection wakes from its blocking read to check
/// for shutdown. An idle connection must not pin its worker forever —
/// graceful drain waits for every pool job, so handlers poll the stop
/// and drain flags at this interval and hang up when either is set.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Serves one connection inline on the current worker.
fn handle_connection(service: &Service, stream: TcpStream, stop: &StopHandle) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if read_half.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let (reply, disposition) = service.handle_line_sync(&line);
                if let Some(reply) = reply {
                    if writeln!(writer, "{reply}").is_err() {
                        break;
                    }
                    let _ = writer.flush();
                }
                if disposition == Disposition::Shutdown {
                    stop.stop();
                    break;
                }
                line.clear();
            }
            // Timed out waiting for the next request: hang up if the
            // service is going down, otherwise keep listening. A
            // partially read line stays buffered in `line` and the
            // next read appends to it.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.is_stopped() || service.is_draining() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}
