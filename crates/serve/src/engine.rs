//! Scenario execution: one validated request → one simulation run.
//!
//! The engine is the bridge between the protocol and the simulation
//! stack: it builds the requested platform, wires the vocoder pipeline
//! through [`scperf_core::SimConfig`]/[`Session`], reuses segment-cost
//! traces from a shared [`SegmentCostCache`] (recording on miss,
//! replaying bit-identically on hit), and — when the request carries a
//! deadline — steps the simulation in growing simulated-time chunks so
//! an expired wall-clock budget cancels the run *mid-simulation*
//! instead of after it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use scperf_core::{CostTable, EstHotStats, Platform, Report, Session, SimConfig};
use scperf_dse::point::{platform_cost, resolve_mapping};
use scperf_dse::SegmentCostCache;
use scperf_kernel::{SimSummary, StopReason, Time, TraceMode};
use scperf_obs::MetricsSnapshot;
use scperf_workloads::vocoder::pipeline::{self, StageTrace, STAGE_NAMES};

use crate::protocol::{ErrorCode, RequestError, Scenario};

/// Everything one successful scenario run produced.
#[derive(Debug)]
pub struct Outcome {
    /// Kernel summary (end time, deltas, activations).
    pub summary: SimSummary,
    /// Platform cost proxy of the mapping.
    pub cost: f64,
    /// Decoded-output checksum (mapping- and replay-invariant).
    pub checksum: i32,
    /// Stages that replayed a cached trace instead of running annotated.
    pub replayed_stages: usize,
    /// Per-process report, when the request asked for one.
    pub report: Option<Report>,
    /// Kernel + estimator metrics, when the request asked for them.
    pub metrics: Option<MetricsSnapshot>,
    /// The same kernel + estimator metrics, always collected — the
    /// service folds these into its live telemetry (counters sum
    /// across runs, so totals accumulate service-wide).
    pub sim_metrics: MetricsSnapshot,
    /// Estimator hot-path counters for this run (fast charges, site
    /// cache hits/misses, DFG arena reuses).
    pub hot: EstHotStats,
    /// Host time spent simulating.
    pub elapsed: Duration,
}

/// Builds the request's platform — two sequential processors sharing
/// the software cost table plus one accelerator, all on the requested
/// clock — and returns the resource ids in
/// [`Target::ALL`](scperf_dse::point::Target::ALL) order.
fn build_platform(sc: &Scenario) -> (Platform, [scperf_core::ResourceId; 3]) {
    let clock = Time::from_ns_f64(sc.params.clock_ns);
    let table = CostTable::risc_sw();
    let mut platform = Platform::new();
    let cpu0 = platform.sequential("cpu0", clock, table.clone(), sc.params.rtos_cycles);
    let cpu1 = platform.sequential("cpu1", clock, table, sc.params.rtos_cycles);
    let hw = platform.parallel("hw", clock, CostTable::asic_hw(), sc.params.hw_k);
    (platform, [cpu0, cpu1, hw])
}

/// First simulated-time chunk of a deadline-stepped run; doubled on
/// every resume. Small enough that the first host-clock check happens
/// almost immediately, large enough that a full run costs only a few
/// dozen resumes.
const FIRST_CHUNK: Time = Time::us(1);

/// Runs one scenario to completion (or deadline) against the shared
/// trace cache.
///
/// Attribution ([`SimConfig::attribution`]) is always on: it is
/// measurement-only (simulated results are bit-identical either way —
/// the `matches_the_dse_evaluator_bit_for_bit` test pins this against
/// the attribution-free sweep evaluator) and it feeds the per-resource
/// contention counters the service's telemetry reports.
///
/// `flight` > 0 arms the flight recorder: the kernel keeps roughly the
/// last `flight` trace events in its ring sink, and they are dumped to
/// stderr when the run is cancelled by its deadline or dies in a
/// panic — the post-mortem for a run that never got to answer.
///
/// # Errors
///
/// [`ErrorCode::DeadlineExceeded`] when `deadline` passes before the
/// simulation finishes, [`ErrorCode::Sim`] when the simulation itself
/// fails (including a caught worker panic).
pub fn execute(
    sc: &Scenario,
    cache: Option<&SegmentCostCache>,
    deadline: Option<Instant>,
    flight: usize,
) -> Result<Outcome, RequestError> {
    let started = Instant::now();
    if let Some(dl) = deadline {
        if started >= dl {
            return Err(RequestError {
                code: ErrorCode::DeadlineExceeded,
                field: None,
                message: "deadline expired while queued".into(),
            });
        }
    }

    let (platform, ids) = build_platform(sc);
    let vm = resolve_mapping(sc.mapping, ids);
    let stage_resources = [vm.lsp, vm.lpc_int, vm.acb, vm.icb, vm.post];

    let mut replays: [StageTrace; 5] = [None, None, None, None, None];
    let mut fingerprints = [0_u64; 5];
    if let Some(cache) = cache {
        for (stage, &rid) in stage_resources.iter().enumerate() {
            let fp = SegmentCostCache::fingerprint(platform.resource(rid), sc.nframes);
            fingerprints[stage] = fp;
            replays[stage] = cache.get(stage, fp);
        }
    }
    let missing: Vec<usize> = (0..5).filter(|&s| replays[s].is_none()).collect();
    let replayed_stages = 5 - missing.len();

    let mut config = SimConfig::new().platform(platform).attribution(true);
    if flight > 0 {
        config = config.tracing(TraceMode::Ring(flight));
    }
    let mut session = config.build();
    let recorder = (cache.is_some() && !missing.is_empty()).then(|| session.recorder());
    let (sim, model) = session.parts_mut();
    let handles = pipeline::build_hybrid(sim, model, vm, sc.nframes, replays);

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_with_deadline(&mut session, deadline)
    }));
    let summary = match outcome {
        Ok(Ok(summary)) => summary,
        Ok(Err(err)) => {
            if flight > 0 {
                dump_flight(&mut session, &err.message);
            }
            return Err(err);
        }
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            if flight > 0 {
                dump_flight(&mut session, &format!("worker panicked: {what}"));
            }
            return Err(RequestError {
                code: ErrorCode::Sim,
                field: None,
                message: format!("worker panicked mid-run: {what}"),
            });
        }
    };

    if let (Some(cache), Some(recorder)) = (cache, recorder) {
        for &stage in &missing {
            let trace = recorder
                .replay(STAGE_NAMES[stage])
                .expect("trace recorded for live stage");
            cache.insert(stage, fingerprints[stage], trace);
        }
    }

    let checksum = handles.output.lock().ok_or_else(|| RequestError {
        code: ErrorCode::Sim,
        field: None,
        message: "pipeline finished without producing output".into(),
    })?;

    let sim_metrics = session.metrics();
    Ok(Outcome {
        summary,
        cost: platform_cost(&sc.mapping),
        checksum,
        replayed_stages,
        report: sc.want_report.then(|| session.report()),
        metrics: sc.want_metrics.then(|| sim_metrics.clone()),
        sim_metrics,
        hot: session.model().hot_stats(),
        elapsed: started.elapsed(),
    })
}

/// Dumps the flight-recorder ring — the last trace events the kernel
/// kept — to stderr, tagged so operators can grep the post-mortem out
/// of the service log.
fn dump_flight(session: &mut Session, why: &str) {
    let table = session.take_events();
    eprintln!(
        "[flight] {why}; last {} trace events ({} earlier events dropped by the ring):",
        table.events.len(),
        table.dropped
    );
    for ev in &table.events {
        let chan = table.resolve(ev.chan);
        eprintln!(
            "[flight]   t={}ps delta={} proc={} {}{}{} {:?}",
            ev.time_ps,
            ev.delta,
            table.process_name(ev),
            table.resolve(ev.label),
            if chan.is_empty() { "" } else { " " },
            chan,
            ev.payload,
        );
    }
}

/// Runs the session to completion; with a deadline, steps it in
/// doubling simulated-time chunks and checks the host clock between
/// chunks, abandoning the run the moment the budget is spent.
fn run_with_deadline(
    session: &mut Session,
    deadline: Option<Instant>,
) -> Result<SimSummary, RequestError> {
    let sim_error = |e: scperf_kernel::SimError| RequestError {
        code: ErrorCode::Sim,
        field: None,
        message: format!("simulation failed: {e:?}"),
    };
    let Some(dl) = deadline else {
        return session.run().map_err(sim_error);
    };
    let mut limit = FIRST_CHUNK;
    loop {
        let summary = session.run_until(limit).map_err(sim_error)?;
        if summary.reason != StopReason::TimeLimit {
            return Ok(summary);
        }
        if Instant::now() >= dl {
            // Abandoning the session here is safe: dropping the
            // simulator kills and joins the parked process threads.
            return Err(RequestError {
                code: ErrorCode::DeadlineExceeded,
                field: None,
                message: format!(
                    "deadline expired mid-run at simulated time {}",
                    summary.end_time
                ),
            });
        }
        limit = limit + limit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PlatformParams;
    use scperf_dse::point::Target;

    fn scenario(mapping: [Target; 5], nframes: usize) -> Scenario {
        Scenario {
            mapping,
            nframes,
            params: PlatformParams::default(),
            deadline_ms: None,
            want_report: false,
            want_metrics: false,
            want_timing: false,
        }
    }

    #[test]
    fn matches_the_dse_evaluator_bit_for_bit() {
        // Same defaults, same workload: the serving path and the sweep
        // path must agree exactly.
        let mapping = [
            Target::Cpu0,
            Target::Cpu1,
            Target::Hw,
            Target::Cpu0,
            Target::Cpu0,
        ];
        let reference = scperf_dse::evaluate(&CostTable::risc_sw(), mapping, 2, None);
        let got = execute(&scenario(mapping, 2), None, None, 0).expect("runs");
        assert_eq!(got.summary.end_time, reference.latency);
        assert_eq!(got.cost, reference.cost);
        assert_eq!(got.checksum, reference.checksum);
    }

    #[test]
    fn cache_hits_replay_bit_identically() {
        let cache = SegmentCostCache::new();
        let sc = scenario([Target::Cpu0; 5], 1);
        let live = execute(&sc, Some(&cache), None, 0).expect("records");
        assert_eq!(live.replayed_stages, 0);
        assert!(live.hot.fast_charges > 0, "live run charges via fast path");
        assert!(live.hot.site_hits > 0, "vocoder loops hit their sites");
        let replayed = execute(&sc, Some(&cache), None, 0).expect("replays");
        assert_eq!(replayed.replayed_stages, 5);
        assert_eq!(replayed.summary.end_time, live.summary.end_time);
        assert_eq!(replayed.checksum, live.checksum);
        assert_eq!(replayed.hot.fast_charges, 0, "trace replay charges nothing");
    }

    #[test]
    fn custom_parameters_change_the_estimate() {
        let sc = scenario([Target::Cpu0; 5], 1);
        let base = execute(&sc, None, None, 0).expect("runs");
        let mut slow = sc.clone();
        slow.params.clock_ns = 20.0;
        let slowed = execute(&slow, None, None, 0).expect("runs");
        assert!(slowed.summary.end_time > base.summary.end_time);
        assert_eq!(slowed.checksum, base.checksum, "data must not change");
    }

    #[test]
    fn an_already_expired_deadline_is_caught_before_running() {
        let sc = scenario([Target::Cpu0; 5], 1);
        let err = execute(&sc, None, Some(Instant::now()), 0).unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(err.message.contains("queued"));
    }

    #[test]
    fn a_deadline_expires_mid_run() {
        // Big enough that the run takes well over a millisecond.
        let sc = scenario([Target::Cpu0; 5], 64);
        let dl = Instant::now() + Duration::from_millis(1);
        let err = execute(&sc, None, Some(dl), 0).unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(
            err.message.contains("mid-run"),
            "expected a mid-run expiry, got: {}",
            err.message
        );
    }

    #[test]
    fn report_and_metrics_are_opt_in() {
        let mut sc = scenario([Target::Cpu0; 5], 1);
        let bare = execute(&sc, None, None, 0).expect("runs");
        assert!(bare.report.is_none() && bare.metrics.is_none());
        sc.want_report = true;
        sc.want_metrics = true;
        let full = execute(&sc, None, None, 0).expect("runs");
        let report = full.report.expect("report requested");
        assert_eq!(report.processes.len(), 5);
        let metrics = full.metrics.expect("metrics requested");
        assert!(metrics.counter("kernel.delta_cycles").is_some());
    }

    #[test]
    fn all_cpu0_mapping_names_cpu0_as_the_bottleneck() {
        // Known mapping, known answer: five pipeline stages serialized
        // on one sequential processor make cpu0 the top utilization
        // entry, with real arbitration contention behind it.
        let mut sc = scenario([Target::Cpu0; 5], 2);
        sc.want_report = true;
        let out = execute(&sc, None, None, 0).expect("runs");
        let report = out.report.expect("report requested");
        let u = report.utilization.expect("attribution is always on");
        assert_eq!(u.total_time, out.summary.end_time);
        let bottleneck = u.bottleneck().expect("cpu0 is sequential");
        assert_eq!(bottleneck.name, "cpu0");
        assert!(
            bottleneck.busy_pct > 0.0,
            "cpu0 must report busy time: {bottleneck:?}"
        );
        assert!(
            bottleneck.contention_pct > 0.0,
            "five stages on one cpu must contend: {bottleneck:?}"
        );
        assert!(bottleneck.waits > 0);
        // And per-run telemetry carries the matching series.
        assert!(out.sim_metrics.counter("est.res.cpu0.busy_ns").unwrap() > 0);
        assert!(
            out.sim_metrics
                .counter("est.res.cpu0.contention_ns")
                .unwrap()
                > 0
        );
        assert!(out
            .sim_metrics
            .iter()
            .any(|(name, _)| name.starts_with("kernel.sched.")));
    }

    #[test]
    fn flight_recorder_does_not_change_results() {
        let sc = scenario([Target::Cpu0; 5], 1);
        let plain = execute(&sc, None, None, 0).expect("runs");
        let armed = execute(&sc, None, None, 256).expect("runs");
        assert_eq!(armed.summary.end_time, plain.summary.end_time);
        assert_eq!(armed.checksum, plain.checksum);
    }

    #[test]
    fn a_deadline_cancel_dumps_the_flight_recorder() {
        // Only observable effect here is the error itself (the dump
        // goes to stderr), but the path must not panic or alter the
        // error classification.
        let sc = scenario([Target::Cpu0; 5], 64);
        let dl = Instant::now() + Duration::from_millis(1);
        let err = execute(&sc, None, Some(dl), 64).unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
    }
}
