//! Scenario execution: one validated request → one simulation run.
//!
//! The engine is the bridge between the protocol and the simulation
//! stack: it builds the requested platform, wires the vocoder pipeline
//! through [`scperf_core::SimConfig`]/[`Session`], reuses segment-cost
//! traces from a shared [`SegmentCostCache`] (recording on miss,
//! replaying bit-identically on hit), and — when the request carries a
//! deadline — steps the simulation in growing simulated-time chunks so
//! an expired wall-clock budget cancels the run *mid-simulation*
//! instead of after it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use scperf_core::{
    table_fingerprint, CostTable, EstHotStats, Platform, Report, Session, SessionPool, SimConfig,
};
use scperf_dse::point::{platform_cost, resolve_mapping};
use scperf_dse::SegmentCostCache;
use scperf_kernel::{SimSummary, StopReason, Time, TraceMode};
use scperf_obs::MetricsSnapshot;
use scperf_workloads::vocoder::pipeline::{self, StageTrace, VocoderHandles, STAGE_NAMES};

use crate::protocol::{ErrorCode, PlatformParams, RequestError, Scenario};

/// Everything one successful scenario run produced.
#[derive(Debug)]
pub struct Outcome {
    /// Kernel summary (end time, deltas, activations).
    pub summary: SimSummary,
    /// Platform cost proxy of the mapping.
    pub cost: f64,
    /// Decoded-output checksum (mapping- and replay-invariant).
    pub checksum: i32,
    /// Stages that replayed a cached trace instead of running annotated.
    pub replayed_stages: usize,
    /// Per-process report, when the request asked for one.
    pub report: Option<Report>,
    /// Kernel + estimator metrics, when the request asked for them.
    pub metrics: Option<MetricsSnapshot>,
    /// The same kernel + estimator metrics, always collected — the
    /// service folds these into its live telemetry (counters sum
    /// across runs, so totals accumulate service-wide).
    pub sim_metrics: MetricsSnapshot,
    /// Estimator hot-path counters for this run (fast charges, site
    /// cache hits/misses, DFG arena reuses).
    pub hot: EstHotStats,
    /// Host time spent simulating.
    pub elapsed: Duration,
}

/// Builds the request's platform — two sequential processors sharing
/// the software cost table plus one accelerator, all on the requested
/// clock — and returns the resource ids in
/// [`Target::ALL`](scperf_dse::point::Target::ALL) order.
fn build_platform(params: &PlatformParams) -> (Platform, [scperf_core::ResourceId; 3]) {
    let clock = Time::from_ns_f64(params.clock_ns);
    let table = CostTable::risc_sw();
    let mut platform = Platform::new();
    let cpu0 = platform.sequential("cpu0", clock, table.clone(), params.rtos_cycles);
    let cpu1 = platform.sequential("cpu1", clock, table, params.rtos_cycles);
    let hw = platform.parallel("hw", clock, CostTable::asic_hw(), params.hw_k);
    (platform, [cpu0, cpu1, hw])
}

/// The scenario-shape key used by the session pool's snapshot store:
/// two scenarios with the same shape produce bit-identical simulations
/// from the same warmed-up snapshot. The shape covers everything the
/// recorded traces depend on — the per-stage mapping, the frame count
/// and the exact platform parameter bits — and nothing they don't
/// (deadline and output options vary freely within a shape).
pub fn shape_key(sc: &Scenario) -> u64 {
    // FNV-1a over the shape-defining fields.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for t in sc.mapping {
        mix(t as u64);
    }
    mix(sc.nframes as u64);
    mix(sc.params.clock_ns.to_bits());
    mix(sc.params.rtos_cycles.to_bits());
    mix(sc.params.hw_k.to_bits());
    h
}

/// The session factory for a serve-side [`SessionPool`]: every slot
/// shares the service's fixed knobs (attribution always on, the
/// flight-recorder ring when armed) over a default platform. The
/// per-scenario platform is stamped in at acquisition — by the
/// snapshot fork on a pool hit, by [`Session::reset_with_platform`] on
/// a miss — so one homogeneous factory serves every parameter set.
pub fn pool_factory(flight: usize) -> impl Fn() -> Session + Send + Sync + 'static {
    move || {
        let (platform, _) = build_platform(&PlatformParams::default());
        let mut config = SimConfig::new().platform(platform).attribution(true);
        if flight > 0 {
            config = config.tracing(TraceMode::Ring(flight));
        }
        config.build()
    }
}

/// First simulated-time chunk of a deadline-stepped run; doubled on
/// every resume. Small enough that the first host-clock check happens
/// almost immediately, large enough that a full run costs only a few
/// dozen resumes.
const FIRST_CHUNK: Time = Time::us(1);

/// Runs one scenario to completion (or deadline) against the shared
/// trace cache.
///
/// Attribution ([`SimConfig::attribution`]) is always on: it is
/// measurement-only (simulated results are bit-identical either way —
/// the `matches_the_dse_evaluator_bit_for_bit` test pins this against
/// the attribution-free sweep evaluator) and it feeds the per-resource
/// contention counters the service's telemetry reports.
///
/// `flight` > 0 arms the flight recorder: the kernel keeps roughly the
/// last `flight` trace events in its ring sink, and they are dumped to
/// stderr when the run is cancelled by its deadline or dies in a
/// panic — the post-mortem for a run that never got to answer.
///
/// # Errors
///
/// [`ErrorCode::DeadlineExceeded`] when `deadline` passes before the
/// simulation finishes, [`ErrorCode::Sim`] when the simulation itself
/// fails (including a caught worker panic).
pub fn execute(
    sc: &Scenario,
    cache: Option<&SegmentCostCache>,
    deadline: Option<Instant>,
    flight: usize,
) -> Result<Outcome, RequestError> {
    let started = Instant::now();
    if let Some(dl) = deadline {
        if started >= dl {
            return Err(RequestError {
                code: ErrorCode::DeadlineExceeded,
                field: None,
                message: "deadline expired while queued".into(),
            });
        }
    }

    let (platform, ids) = build_platform(&sc.params);
    let vm = resolve_mapping(sc.mapping, ids);
    let stage_resources = [vm.lsp, vm.lpc_int, vm.acb, vm.icb, vm.post];

    let mut replays: [StageTrace; 5] = [None, None, None, None, None];
    let mut fingerprints = [0_u64; 5];
    if let Some(cache) = cache {
        for (stage, &rid) in stage_resources.iter().enumerate() {
            let fp = SegmentCostCache::fingerprint(platform.resource(rid), sc.nframes);
            fingerprints[stage] = fp;
            replays[stage] = cache.get(stage, fp);
        }
    }
    let missing: Vec<usize> = (0..5).filter(|&s| replays[s].is_none()).collect();
    let replayed_stages = 5 - missing.len();

    let mut config = SimConfig::new().platform(platform).attribution(true);
    if flight > 0 {
        config = config.tracing(TraceMode::Ring(flight));
    }
    // Warm-start the stages that still charge live from the shared
    // compiled-program set (recorded by any earlier run against the
    // same software cost table — the fingerprint gate makes a stale
    // set a no-op, never a wrong answer).
    if let Some(set) = cache.and_then(|c| c.programs(table_fingerprint(&CostTable::risc_sw()))) {
        config = config.program_set(set);
    }
    let mut session = config.build();
    let recorder = (cache.is_some() && !missing.is_empty()).then(|| session.recorder());
    let (sim, model) = session.parts_mut();
    let handles = pipeline::build_hybrid(sim, model, vm, sc.nframes, replays);

    let summary = simulate(&mut session, deadline, flight)?;

    if let Some(cache) = cache {
        if let Some(recorder) = recorder {
            for &stage in &missing {
                let trace = recorder
                    .replay(STAGE_NAMES[stage])
                    .expect("trace recorded for live stage");
                cache.insert(stage, fingerprints[stage], trace);
            }
        }
        cache.publish_programs(&session.programs());
    }

    collect_outcome(
        &mut session,
        sc,
        &handles,
        summary,
        replayed_stages,
        started,
    )
}

/// [`execute`] over a [`SessionPool`]: acquires a slot keyed by the
/// scenario's shape instead of building a fresh session. On a snapshot
/// hit the slot arrives pre-stamped with the shape's platform and every
/// stage elaborates in replay mode — construction *and* warmup
/// estimation are both skipped. On a first-of-shape miss the slot is
/// reset onto the scenario's platform, the run records its traces (the
/// shared [`SegmentCostCache`] still assists stage-by-stage), and the
/// warmed-up snapshot is published for the shape before the slot is
/// released.
///
/// # Errors
///
/// [`ErrorCode::PoolExhausted`] when every slot is live (callers should
/// attach a `retry_after_ms` hint), plus everything [`execute`] can
/// return.
pub fn execute_pooled(
    sc: &Scenario,
    pool: &SessionPool,
    cache: Option<&SegmentCostCache>,
    deadline: Option<Instant>,
    flight: usize,
) -> Result<Outcome, RequestError> {
    let started = Instant::now();
    if let Some(dl) = deadline {
        if started >= dl {
            return Err(RequestError {
                code: ErrorCode::DeadlineExceeded,
                field: None,
                message: "deadline expired while queued".into(),
            });
        }
    }

    let shape = shape_key(sc);
    let mut slot = pool.acquire_for_shape(shape).map_err(|e| RequestError {
        code: ErrorCode::PoolExhausted,
        field: None,
        message: e.to_string(),
    })?;

    let (platform, ids) = build_platform(&sc.params);
    let vm = resolve_mapping(sc.mapping, ids);
    let stage_resources = [vm.lsp, vm.lpc_int, vm.acb, vm.icb, vm.post];

    let snapshot = slot.forked_snapshot().cloned();
    let mut replays: [StageTrace; 5] = [None, None, None, None, None];
    let mut fingerprints = [0_u64; 5];
    let mut missing: Vec<usize> = Vec::new();
    match &snapshot {
        Some(snap) => {
            // Hit: the slot is already stamped with the snapshot's
            // (identical) platform; every stage replays its trace.
            for (stage, replay) in replays.iter_mut().enumerate() {
                *replay = snap.replay(STAGE_NAMES[stage]);
            }
            debug_assert!(replays.iter().all(Option::is_some));
        }
        None => {
            slot.reset_with_platform(platform.clone());
            if let Some(cache) = cache {
                // First-of-shape runs charge live wherever no stage
                // trace exists yet — warm those from the cross-worker
                // compiled-program set before elaboration.
                if let Some(set) = cache.programs(table_fingerprint(&CostTable::risc_sw())) {
                    slot.model().warm_programs(set);
                }
                for (stage, &rid) in stage_resources.iter().enumerate() {
                    let fp = SegmentCostCache::fingerprint(platform.resource(rid), sc.nframes);
                    fingerprints[stage] = fp;
                    replays[stage] = cache.get(stage, fp);
                }
            }
            missing = (0..5).filter(|&s| replays[s].is_none()).collect();
        }
    }
    let replayed_stages = replays.iter().filter(|r| r.is_some()).count();

    // On a miss the run records every stage's trace (stages replayed
    // from the shared cache re-record identically), so the published
    // snapshot always covers all five stages.
    let recorder = snapshot.is_none().then(|| slot.recorder());

    let (sim, model) = slot.parts_mut();
    let handles = pipeline::build_hybrid(sim, model, vm, sc.nframes, replays);
    slot.enforce_limits().map_err(|e| RequestError {
        code: ErrorCode::Sim,
        field: None,
        message: e.to_string(),
    })?;

    let summary = simulate(&mut slot, deadline, flight)?;

    if let Some(recorder) = recorder {
        if let Some(cache) = cache {
            for &stage in &missing {
                let trace = recorder
                    .replay(STAGE_NAMES[stage])
                    .expect("trace recorded for live stage");
                cache.insert(stage, fingerprints[stage], trace);
            }
            cache.publish_programs(&slot.programs());
        }
        pool.publish_snapshot(shape, Session::snapshot(&mut slot));
    }

    collect_outcome(&mut slot, sc, &handles, summary, replayed_stages, started)
}

/// Runs the elaborated session under the panic shield, dumping the
/// flight recorder on a deadline cancel or a caught panic.
fn simulate(
    session: &mut Session,
    deadline: Option<Instant>,
    flight: usize,
) -> Result<SimSummary, RequestError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| run_with_deadline(session, deadline)));
    match outcome {
        Ok(Ok(summary)) => Ok(summary),
        Ok(Err(err)) => {
            if flight > 0 {
                dump_flight(session, &err.message);
            }
            Err(err)
        }
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            if flight > 0 {
                dump_flight(session, &format!("worker panicked: {what}"));
            }
            Err(RequestError {
                code: ErrorCode::Sim,
                field: None,
                message: format!("worker panicked mid-run: {what}"),
            })
        }
    }
}

/// Assembles the response payload from a finished run.
fn collect_outcome(
    session: &mut Session,
    sc: &Scenario,
    handles: &VocoderHandles,
    summary: SimSummary,
    replayed_stages: usize,
    started: Instant,
) -> Result<Outcome, RequestError> {
    let checksum = handles.output.lock().ok_or_else(|| RequestError {
        code: ErrorCode::Sim,
        field: None,
        message: "pipeline finished without producing output".into(),
    })?;

    let sim_metrics = session.metrics();
    Ok(Outcome {
        summary,
        cost: platform_cost(&sc.mapping),
        checksum,
        replayed_stages,
        report: sc.want_report.then(|| session.report()),
        metrics: sc.want_metrics.then(|| sim_metrics.clone()),
        sim_metrics,
        hot: session.model().hot_stats(),
        elapsed: started.elapsed(),
    })
}

/// Dumps the flight-recorder ring — the last trace events the kernel
/// kept — to stderr, tagged so operators can grep the post-mortem out
/// of the service log.
fn dump_flight(session: &mut Session, why: &str) {
    let table = session.take_events();
    eprintln!(
        "[flight] {why}; last {} trace events ({} earlier events dropped by the ring):",
        table.events.len(),
        table.dropped
    );
    for ev in &table.events {
        let chan = table.resolve(ev.chan);
        eprintln!(
            "[flight]   t={}ps delta={} proc={} {}{}{} {:?}",
            ev.time_ps,
            ev.delta,
            table.process_name(ev),
            table.resolve(ev.label),
            if chan.is_empty() { "" } else { " " },
            chan,
            ev.payload,
        );
    }
}

/// Runs the session to completion; with a deadline, steps it in
/// growing simulated-time chunks and checks the host clock between
/// chunks, abandoning the run the moment the budget is spent. Chunk
/// growth is planned by [`next_step`]: exponential while the budget is
/// comfortable, clamped as the deadline approaches.
fn run_with_deadline(
    session: &mut Session,
    deadline: Option<Instant>,
) -> Result<SimSummary, RequestError> {
    let sim_error = |e: scperf_kernel::SimError| RequestError {
        code: ErrorCode::Sim,
        field: None,
        message: format!("simulation failed: {e:?}"),
    };
    let Some(dl) = deadline else {
        return session.run().map_err(sim_error);
    };
    let started = Instant::now();
    let mut step = FIRST_CHUNK;
    let mut limit = FIRST_CHUNK;
    loop {
        let summary = session.run_until(limit).map_err(sim_error)?;
        if summary.reason != StopReason::TimeLimit {
            return Ok(summary);
        }
        let now = Instant::now();
        if now >= dl {
            // Abandoning the session here is safe: dropping the
            // simulator kills and joins the parked process threads.
            return Err(RequestError {
                code: ErrorCode::DeadlineExceeded,
                field: None,
                message: format!(
                    "deadline expired mid-run at simulated time {}",
                    summary.end_time
                ),
            });
        }
        step = next_step(step, summary.end_time, now - started, dl - now);
        limit = summary.end_time + step;
    }
}

/// Plans the simulated-time length of the next deadline-stepped chunk.
///
/// Doubling alone (the previous behaviour) is wrong near expiry: each
/// chunk's host cost roughly matches the *sum of all chunks before it*,
/// so a deadline landing just after a chunk starts was overshot by a
/// whole chunk — about the entire budget again. The fix clamps the
/// doubled step to the simulated time the run is expected to cover in
/// *half* the remaining wall-clock budget, using the sim-per-host rate
/// observed so far; the host-clock poll after the chunk then lands
/// well before the deadline, and the later chunks shrink geometrically
/// towards it. [`FIRST_CHUNK`] stays the floor so progress never
/// stalls, and the doubling cap keeps the resume count logarithmic
/// when the budget is generous.
fn next_step(prev: Time, sim_done: Time, host_spent: Duration, host_left: Duration) -> Time {
    let doubled = prev + prev;
    let spent = host_spent.as_secs_f64();
    if sim_done.is_zero() || spent <= 0.0 {
        return doubled;
    }
    // Simulated picoseconds covered per host second so far.
    let rate = sim_done.as_ps() as f64 / spent;
    let budget = Time::from_ps_f64(rate * host_left.as_secs_f64() * 0.5);
    doubled.min(budget).max(FIRST_CHUNK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PlatformParams;
    use scperf_core::InstanceLimits;
    use scperf_dse::point::Target;

    fn scenario(mapping: [Target; 5], nframes: usize) -> Scenario {
        Scenario {
            mapping,
            nframes,
            params: PlatformParams::default(),
            deadline_ms: None,
            want_report: false,
            want_metrics: false,
            want_timing: false,
        }
    }

    #[test]
    fn matches_the_dse_evaluator_bit_for_bit() {
        // Same defaults, same workload: the serving path and the sweep
        // path must agree exactly.
        let mapping = [
            Target::Cpu0,
            Target::Cpu1,
            Target::Hw,
            Target::Cpu0,
            Target::Cpu0,
        ];
        let reference = scperf_dse::evaluate(&CostTable::risc_sw(), mapping, 2, None);
        let got = execute(&scenario(mapping, 2), None, None, 0).expect("runs");
        assert_eq!(got.summary.end_time, reference.latency);
        assert_eq!(got.cost, reference.cost);
        assert_eq!(got.checksum, reference.checksum);
    }

    #[test]
    fn cache_hits_replay_bit_identically() {
        let cache = SegmentCostCache::new();
        let sc = scenario([Target::Cpu0; 5], 1);
        let live = execute(&sc, Some(&cache), None, 0).expect("records");
        assert_eq!(live.replayed_stages, 0);
        assert!(live.hot.fast_charges > 0, "live run charges via fast path");
        assert!(live.hot.site_hits > 0, "vocoder loops hit their sites");
        let replayed = execute(&sc, Some(&cache), None, 0).expect("replays");
        assert_eq!(replayed.replayed_stages, 5);
        assert_eq!(replayed.summary.end_time, live.summary.end_time);
        assert_eq!(replayed.checksum, live.checksum);
        assert_eq!(replayed.hot.fast_charges, 0, "trace replay charges nothing");
    }

    #[test]
    fn cost_programs_cross_scenario_shapes_through_the_cache() {
        // A different frame count misses every stage-trace fingerprint,
        // but the compiled cost programs published by the first run
        // warm-start the second — fewer recording misses, bit-identical
        // estimate.
        let cache = SegmentCostCache::new();
        let cold = execute(&scenario([Target::Cpu0; 5], 1), Some(&cache), None, 0).expect("runs");
        assert!(cold.hot.site_misses > 0, "first run records programs");
        assert_eq!(cold.hot.prog_warm_hits, 0, "nothing published yet");

        let sc2 = scenario([Target::Cpu0; 5], 2);
        let warm = execute(&sc2, Some(&cache), None, 0).expect("runs");
        assert_eq!(warm.replayed_stages, 0, "new shape: no trace replays");
        assert!(
            warm.hot.prog_warm_hits > 0,
            "published programs must satisfy local misses: {:?}",
            warm.hot
        );
        assert!(warm.sim_metrics.counter("est.prog.warm_hits").unwrap() > 0);

        let reference = execute(&sc2, None, None, 0).expect("runs");
        assert_eq!(warm.summary.end_time, reference.summary.end_time);
        assert_eq!(warm.checksum, reference.checksum);
    }

    #[test]
    fn custom_parameters_change_the_estimate() {
        let sc = scenario([Target::Cpu0; 5], 1);
        let base = execute(&sc, None, None, 0).expect("runs");
        let mut slow = sc.clone();
        slow.params.clock_ns = 20.0;
        let slowed = execute(&slow, None, None, 0).expect("runs");
        assert!(slowed.summary.end_time > base.summary.end_time);
        assert_eq!(slowed.checksum, base.checksum, "data must not change");
    }

    #[test]
    fn an_already_expired_deadline_is_caught_before_running() {
        let sc = scenario([Target::Cpu0; 5], 1);
        let err = execute(&sc, None, Some(Instant::now()), 0).unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(err.message.contains("queued"));
    }

    #[test]
    fn a_deadline_expires_mid_run() {
        // Big enough that the run takes well over a millisecond.
        let sc = scenario([Target::Cpu0; 5], 64);
        let dl = Instant::now() + Duration::from_millis(1);
        let err = execute(&sc, None, Some(dl), 0).unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(
            err.message.contains("mid-run"),
            "expected a mid-run expiry, got: {}",
            err.message
        );
    }

    #[test]
    fn report_and_metrics_are_opt_in() {
        let mut sc = scenario([Target::Cpu0; 5], 1);
        let bare = execute(&sc, None, None, 0).expect("runs");
        assert!(bare.report.is_none() && bare.metrics.is_none());
        sc.want_report = true;
        sc.want_metrics = true;
        let full = execute(&sc, None, None, 0).expect("runs");
        let report = full.report.expect("report requested");
        assert_eq!(report.processes.len(), 5);
        let metrics = full.metrics.expect("metrics requested");
        assert!(metrics.counter("kernel.delta_cycles").is_some());
    }

    #[test]
    fn all_cpu0_mapping_names_cpu0_as_the_bottleneck() {
        // Known mapping, known answer: five pipeline stages serialized
        // on one sequential processor make cpu0 the top utilization
        // entry, with real arbitration contention behind it.
        let mut sc = scenario([Target::Cpu0; 5], 2);
        sc.want_report = true;
        let out = execute(&sc, None, None, 0).expect("runs");
        let report = out.report.expect("report requested");
        let u = report.utilization.expect("attribution is always on");
        assert_eq!(u.total_time, out.summary.end_time);
        let bottleneck = u.bottleneck().expect("cpu0 is sequential");
        assert_eq!(bottleneck.name, "cpu0");
        assert!(
            bottleneck.busy_pct > 0.0,
            "cpu0 must report busy time: {bottleneck:?}"
        );
        assert!(
            bottleneck.contention_pct > 0.0,
            "five stages on one cpu must contend: {bottleneck:?}"
        );
        assert!(bottleneck.waits > 0);
        // And per-run telemetry carries the matching series.
        assert!(out.sim_metrics.counter("est.res.cpu0.busy_ns").unwrap() > 0);
        assert!(
            out.sim_metrics
                .counter("est.res.cpu0.contention_ns")
                .unwrap()
                > 0
        );
        assert!(out
            .sim_metrics
            .iter()
            .any(|(name, _)| name.starts_with("kernel.sched.")));
    }

    #[test]
    fn flight_recorder_does_not_change_results() {
        let sc = scenario([Target::Cpu0; 5], 1);
        let plain = execute(&sc, None, None, 0).expect("runs");
        let armed = execute(&sc, None, None, 256).expect("runs");
        assert_eq!(armed.summary.end_time, plain.summary.end_time);
        assert_eq!(armed.checksum, plain.checksum);
    }

    #[test]
    fn chunk_planner_doubles_while_the_budget_is_comfortable() {
        // No observed rate yet (nothing simulated): pure doubling.
        let step = next_step(
            Time::us(4),
            Time::ps(0),
            Duration::from_millis(5),
            Duration::from_millis(5),
        );
        assert_eq!(step, Time::us(8));
        // Generous budget: 1ms simulated per 1ms host, 10s left — the
        // rate clamp sits far above the doubled step.
        let step = next_step(
            Time::us(4),
            Time::ms(1),
            Duration::from_millis(1),
            Duration::from_secs(10),
        );
        assert_eq!(step, Time::us(8));
    }

    #[test]
    fn chunk_planner_clamps_near_the_deadline() {
        // 1ms simulated in 100ms host → 10ns simulated per host µs.
        // With 10ms of budget left, half the budget covers 50µs of
        // simulated time — far below the doubled 2ms step.
        let step = next_step(
            Time::ms(1),
            Time::ms(1),
            Duration::from_millis(100),
            Duration::from_millis(10),
        );
        assert_eq!(step, Time::us(50));
        assert!(step < Time::ms(2), "the clamp must beat doubling");
    }

    #[test]
    fn chunk_planner_never_shrinks_below_the_floor() {
        // Budget practically gone: the rate clamp asks for 5000ps, but
        // the floor keeps the simulation progressing.
        let step = next_step(
            Time::ms(1),
            Time::ms(1),
            Duration::from_millis(100),
            Duration::from_micros(1),
        );
        assert_eq!(step, FIRST_CHUNK);
    }

    #[test]
    fn a_mid_run_deadline_cancels_promptly() {
        // Regression for the unclamped doubling: chunks grew without
        // regard to the remaining budget, so a deadline landing just
        // after a chunk started was overshot by the whole chunk —
        // roughly the entire budget again, and unboundedly worse as
        // chunks grew. With the clamp the host-clock polls bracket the
        // deadline tightly; the bound here is deliberately loose for
        // noisy CI hosts but fails the old gross overshoot.
        let sc = scenario([Target::Cpu0; 5], 512);
        let budget = Duration::from_millis(10);
        let started = Instant::now();
        let err = execute(&sc, None, Some(started + budget), 0).unwrap_err();
        let overshoot = started.elapsed().saturating_sub(budget);
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(
            overshoot < Duration::from_millis(250),
            "cancel overshot the deadline by {overshoot:?}"
        );
    }

    #[test]
    fn pooled_runs_match_the_unpooled_engine_bit_for_bit() {
        let pool = SessionPool::new(InstanceLimits::default(), pool_factory(0));
        let sc = scenario(
            [
                Target::Cpu0,
                Target::Cpu1,
                Target::Hw,
                Target::Cpu0,
                Target::Cpu1,
            ],
            2,
        );
        let reference = execute(&sc, None, None, 0).expect("runs");
        let first = execute_pooled(&sc, &pool, None, None, 0).expect("first-of-shape");
        assert_eq!(first.summary.end_time, reference.summary.end_time);
        assert_eq!(first.checksum, reference.checksum);
        assert_eq!(first.replayed_stages, 0, "a miss runs fully annotated");
        let second = execute_pooled(&sc, &pool, None, None, 0).expect("snapshot fork");
        assert_eq!(second.summary.end_time, reference.summary.end_time);
        assert_eq!(second.checksum, reference.checksum);
        assert_eq!(second.replayed_stages, 5, "a hit replays every stage");
        assert_eq!(second.hot.fast_charges, 0, "forked runs charge nothing");
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.forks), (1, 1, 1));
        assert_eq!(stats.resets, 2, "both slots were reset on release");
    }

    #[test]
    fn each_scenario_shape_gets_its_own_snapshot() {
        let pool = SessionPool::new(InstanceLimits::default(), pool_factory(0));
        let a = scenario([Target::Cpu0; 5], 1);
        let mut b = a.clone();
        b.params.clock_ns = 20.0;
        assert_ne!(shape_key(&a), shape_key(&b), "params are shape-defining");
        let ra = execute_pooled(&a, &pool, None, None, 0).expect("runs");
        let rb = execute_pooled(&b, &pool, None, None, 0).expect("runs");
        assert!(rb.summary.end_time > ra.summary.end_time);
        assert_eq!(rb.checksum, ra.checksum, "data must not change");
        let ra2 = execute_pooled(&a, &pool, None, None, 0).expect("hit");
        let rb2 = execute_pooled(&b, &pool, None, None, 0).expect("hit");
        assert_eq!(ra2.summary.end_time, ra.summary.end_time);
        assert_eq!(rb2.summary.end_time, rb.summary.end_time);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn an_exhausted_pool_is_a_typed_retryable_error() {
        let pool = SessionPool::new(
            InstanceLimits {
                max_sessions: 1,
                ..InstanceLimits::default()
            },
            pool_factory(0),
        );
        let held = pool.acquire().expect("the only slot");
        let sc = scenario([Target::Cpu0; 5], 1);
        let err = execute_pooled(&sc, &pool, None, None, 0).unwrap_err();
        assert_eq!(err.code, ErrorCode::PoolExhausted);
        assert_eq!(pool.stats().exhausted, 1);
        drop(held);
        execute_pooled(&sc, &pool, None, None, 0).expect("the slot came back");
    }

    #[test]
    fn a_deadline_cancel_dumps_the_flight_recorder() {
        // Only observable effect here is the error itself (the dump
        // goes to stderr), but the path must not panic or alter the
        // error classification.
        let sc = scenario([Target::Cpu0; 5], 64);
        let dl = Instant::now() + Duration::from_millis(1);
        let err = execute(&sc, None, Some(dl), 64).unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
    }
}
