//! The stdio frontend: JSON-lines requests on stdin, JSON-lines
//! responses on stdout.
//!
//! Requests fan out onto the service's worker pool, so responses may
//! arrive out of request order — they carry the request `id` for
//! correlation. The loop ends on stdin EOF or a `shutdown` op; either
//! way the service drains every accepted request before returning.

use std::io::BufRead;

use crate::service::{Disposition, Responder, Service};

/// Reads request lines from `reader`, answering through `responder`,
/// until EOF or a `shutdown` op; then drains the service.
pub fn serve_reader<R: BufRead>(service: &Service, reader: R, responder: &Responder) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if service.handle_line(&line, responder) == Disposition::Shutdown {
            break;
        }
    }
    service.drain();
}

/// Serves stdin/stdout until EOF or a `shutdown` op, then drains.
pub fn run_stdio(service: &Service) {
    let responder = Responder::from_writer(std::io::stdout());
    serve_reader(service, std::io::stdin().lock(), &responder);
}
