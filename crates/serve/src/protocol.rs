//! The JSON-lines request/response protocol and its boundary
//! validation.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests select an operation with `"op"`
//! (default `"sim"`):
//!
//! ```json
//! {"id":"r1","mapping":["cpu0","cpu0","hw","cpu1","cpu0"],"nframes":4}
//! {"id":"b1","op":"batch","scenarios":[{"mapping":[...],"nframes":2},...]}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"stats","reset":true}
//! {"op":"telemetry"}
//! {"op":"shutdown"}
//! ```
//!
//! # Validation at the boundary
//!
//! Worker threads run simulations; they must never panic on bad input.
//! Everything the kernel or estimator would `panic!` on — NaN or
//! negative cost parameters, a time-area weight outside `[0, 1]`
//! (mirroring [`scperf_core::weighted_hw_cycles`]'s contract), a
//! non-positive clock — is rejected *here*, with a typed error response
//! naming the offending field, before a job is ever enqueued.

use scperf_dse::point::Target;

use crate::json::Json;

/// Upper bound on frames per scenario; keeps one hostile request from
/// pinning a worker for hours.
pub const MAX_NFRAMES: u64 = 4096;
/// Upper bound on scenarios per batch request.
pub const MAX_BATCH: usize = 256;
/// Upper bound on request id length.
pub const MAX_ID_LEN: usize = 128;

/// Machine-readable error classes carried in the `"code"` field of
/// error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    Parse,
    /// The request was well-formed JSON but failed validation.
    InvalidRequest,
    /// The service queue is saturated; retry after `retry_after_ms`.
    QueueFull,
    /// Every pooled session slot is live; retry after `retry_after_ms`.
    PoolExhausted,
    /// The request's deadline expired (in queue or mid-run).
    DeadlineExceeded,
    /// The service is draining and accepts no new work.
    ShuttingDown,
    /// The simulation itself failed.
    Sim,
}

impl ErrorCode {
    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse_error",
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::PoolExhausted => "pool_exhausted",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Sim => "sim_error",
        }
    }
}

/// A typed request failure: what class, which field, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Error class.
    pub code: ErrorCode,
    /// The request field at fault, when one is identifiable.
    pub field: Option<String>,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    /// An [`ErrorCode::InvalidRequest`] for `field`.
    pub fn invalid(field: &str, message: impl Into<String>) -> RequestError {
        RequestError {
            code: ErrorCode::InvalidRequest,
            field: Some(field.to_string()),
            message: message.into(),
        }
    }
}

/// Platform/resource parameters of one scenario, all optional on the
/// wire.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformParams {
    /// Clock period of every resource, in nanoseconds.
    pub clock_ns: f64,
    /// RTOS overhead charged per channel access / timed wait on the
    /// sequential processors, in cycles.
    pub rtos_cycles: f64,
    /// Time-area weight `k` of the accelerator (annotated HW time is
    /// `T_min + (T_max − T_min)·k`).
    pub hw_k: f64,
}

impl Default for PlatformParams {
    fn default() -> PlatformParams {
        PlatformParams {
            clock_ns: scperf_dse::point::CLOCK.as_ns_f64(),
            rtos_cycles: scperf_dse::point::RTOS_CYCLES,
            hw_k: scperf_dse::point::HW_K,
        }
    }
}

/// One validated scenario-evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Per-stage mapping targets, in pipeline stage order.
    pub mapping: [Target; 5],
    /// Frames pushed through the pipeline.
    pub nframes: usize,
    /// Platform parameters.
    pub params: PlatformParams,
    /// Wall-clock budget measured from admission, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Include the per-process report in the response.
    pub want_report: bool,
    /// Include the kernel+estimator metrics snapshot in the response.
    pub want_metrics: bool,
    /// Include host-timing fields (`elapsed_us`, `replayed_stages`).
    /// Off by default so that response payloads are deterministic.
    pub want_timing: bool,
}

/// A parsed and validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one scenario.
    Sim {
        /// Caller-chosen correlation id, echoed in the response.
        id: String,
        /// The scenario.
        scenario: Scenario,
    },
    /// Evaluate a list of scenarios; the response carries per-scenario
    /// results in request order.
    Batch {
        /// Caller-chosen correlation id, echoed in the response.
        id: String,
        /// Scenarios, each independently validated.
        scenarios: Vec<Result<Scenario, RequestError>>,
    },
    /// Liveness probe.
    Ping {
        /// Optional correlation id.
        id: Option<String>,
    },
    /// Service metrics snapshot.
    Stats {
        /// Optional correlation id.
        id: Option<String>,
        /// Reset the service's counters, latency histograms and uptime
        /// clock *after* rendering the reply (read-and-reset).
        reset: bool,
    },
    /// Prometheus text-exposition dump of the full telemetry state:
    /// `serve.*` counters and latency quantiles plus the folded
    /// per-run kernel/estimator metrics (`kernel.*`, `est.*`).
    Telemetry {
        /// Optional correlation id.
        id: Option<String>,
    },
    /// Begin graceful shutdown: drain accepted work, then stop.
    Shutdown {
        /// Optional correlation id.
        id: Option<String>,
    },
}

impl Request {
    /// Validates a parsed JSON value into a request.
    pub fn from_json(v: &Json) -> Result<Request, RequestError> {
        if !v.is_obj() {
            return Err(RequestError {
                code: ErrorCode::InvalidRequest,
                field: None,
                message: "request must be a JSON object".into(),
            });
        }
        let op = match v.get("op") {
            None => "sim",
            Some(Json::Str(s)) => s.as_str(),
            Some(_) => return Err(RequestError::invalid("op", "must be a string")),
        };
        match op {
            "ping" => Ok(Request::Ping { id: opt_id(v)? }),
            "stats" => Ok(Request::Stats {
                id: opt_id(v)?,
                reset: bool_field(v, "reset")?,
            }),
            "telemetry" => Ok(Request::Telemetry { id: opt_id(v)? }),
            "shutdown" => Ok(Request::Shutdown { id: opt_id(v)? }),
            "sim" => Ok(Request::Sim {
                id: required_id(v)?,
                scenario: scenario_from(v)?,
            }),
            "batch" => {
                let id = required_id(v)?;
                let items = v
                    .get("scenarios")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| RequestError::invalid("scenarios", "must be an array"))?;
                if items.is_empty() {
                    return Err(RequestError::invalid("scenarios", "must not be empty"));
                }
                if items.len() > MAX_BATCH {
                    return Err(RequestError::invalid(
                        "scenarios",
                        format!("at most {MAX_BATCH} scenarios per batch"),
                    ));
                }
                let scenarios = items.iter().map(scenario_from).collect();
                Ok(Request::Batch { id, scenarios })
            }
            other => Err(RequestError::invalid(
                "op",
                format!(
                    "unknown op {other:?} (expected sim, batch, ping, stats, telemetry or shutdown)"
                ),
            )),
        }
    }
}

/// Pulls the id out of a request object *without* full validation — for
/// correlating error responses to requests that failed validation.
pub fn salvage_id(v: &Json) -> Option<String> {
    v.get("id").and_then(Json::as_str).map(str::to_string)
}

fn required_id(v: &Json) -> Result<String, RequestError> {
    match v.get("id") {
        Some(Json::Str(s)) if !s.is_empty() && s.len() <= MAX_ID_LEN => Ok(s.clone()),
        Some(Json::Str(_)) => Err(RequestError::invalid(
            "id",
            format!("must be 1..={MAX_ID_LEN} characters"),
        )),
        Some(_) => Err(RequestError::invalid("id", "must be a string")),
        None => Err(RequestError::invalid("id", "missing")),
    }
}

fn opt_id(v: &Json) -> Result<Option<String>, RequestError> {
    match v.get("id") {
        None => Ok(None),
        _ => required_id(v).map(Some),
    }
}

fn scenario_from(v: &Json) -> Result<Scenario, RequestError> {
    if !v.is_obj() {
        return Err(RequestError {
            code: ErrorCode::InvalidRequest,
            field: None,
            message: "scenario must be a JSON object".into(),
        });
    }
    if let Some(w) = v.get("workload") {
        match w.as_str() {
            Some("vocoder") => {}
            _ => {
                return Err(RequestError::invalid(
                    "workload",
                    "only \"vocoder\" is served",
                ))
            }
        }
    }

    let mapping_json = v
        .get("mapping")
        .and_then(Json::as_arr)
        .ok_or_else(|| RequestError::invalid("mapping", "must be an array of 5 targets"))?;
    if mapping_json.len() != 5 {
        return Err(RequestError::invalid(
            "mapping",
            format!("expected 5 targets, got {}", mapping_json.len()),
        ));
    }
    let mut mapping = [Target::Cpu0; 5];
    for (i, t) in mapping_json.iter().enumerate() {
        mapping[i] = match t.as_str() {
            Some("cpu0") => Target::Cpu0,
            Some("cpu1") => Target::Cpu1,
            Some("hw") => Target::Hw,
            _ => {
                return Err(RequestError::invalid(
                    "mapping",
                    format!("target {i} must be \"cpu0\", \"cpu1\" or \"hw\""),
                ))
            }
        };
    }

    let nframes = match v.get("nframes") {
        Some(n) => match n.as_u64() {
            Some(f) if (1..=MAX_NFRAMES).contains(&f) => f as usize,
            _ => {
                return Err(RequestError::invalid(
                    "nframes",
                    format!("must be an integer in 1..={MAX_NFRAMES}"),
                ))
            }
        },
        None => return Err(RequestError::invalid("nframes", "missing")),
    };

    let defaults = PlatformParams::default();
    // The parser guarantees numbers are finite, but these bounds are
    // still the panic-proofing layer: Platform::sequential rejects
    // non-positive clocks, Time::from_ns_f64 rejects negatives, and
    // weighted_hw_cycles rejects k outside [0, 1] — all by panicking.
    let clock_ns = num_field(v, "clock_ns", defaults.clock_ns)?;
    if !(clock_ns > 0.0 && clock_ns <= 1e9) {
        return Err(RequestError::invalid(
            "clock_ns",
            "must be a finite number in (0, 1e9]",
        ));
    }
    let rtos_cycles = num_field(v, "rtos_cycles", defaults.rtos_cycles)?;
    if !(0.0..=1e9).contains(&rtos_cycles) {
        return Err(RequestError::invalid(
            "rtos_cycles",
            "cost must be a finite number in [0, 1e9]",
        ));
    }
    let hw_k = num_field(v, "hw_k", defaults.hw_k)?;
    if !(0.0..=1.0).contains(&hw_k) {
        return Err(RequestError::invalid(
            "hw_k",
            "time-area weight must lie in [0, 1]",
        ));
    }

    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(n) => match n.as_u64() {
            Some(ms) if ms > 0 => Some(ms),
            _ => {
                return Err(RequestError::invalid(
                    "deadline_ms",
                    "must be a positive integer",
                ))
            }
        },
    };

    Ok(Scenario {
        mapping,
        nframes,
        params: PlatformParams {
            clock_ns,
            rtos_cycles,
            hw_k,
        },
        deadline_ms,
        want_report: bool_field(v, "report")?,
        want_metrics: bool_field(v, "metrics")?,
        want_timing: bool_field(v, "timing")?,
    })
}

fn num_field(v: &Json, field: &str, default: f64) -> Result<f64, RequestError> {
    match v.get(field) {
        None => Ok(default),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| RequestError::invalid(field, "must be a number")),
    }
}

fn bool_field(v: &Json, field: &str) -> Result<bool, RequestError> {
    match v.get(field) {
        None => Ok(false),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| RequestError::invalid(field, "must be a boolean")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn req(line: &str) -> Result<Request, RequestError> {
        Request::from_json(&parse(line).expect("test input parses"))
    }

    const OK: &str = r#"{"id":"r1","mapping":["cpu0","cpu1","hw","cpu0","cpu0"],"nframes":2}"#;

    #[test]
    fn minimal_sim_request_gets_defaults() {
        let Request::Sim { id, scenario } = req(OK).unwrap() else {
            panic!("expected sim request");
        };
        assert_eq!(id, "r1");
        assert_eq!(scenario.nframes, 2);
        assert_eq!(scenario.params, PlatformParams::default());
        assert!(!scenario.want_report && !scenario.want_metrics && !scenario.want_timing);
        assert_eq!(scenario.deadline_ms, None);
    }

    #[test]
    fn out_of_range_k_is_rejected_with_the_field_named() {
        let line = r#"{"id":"r","mapping":["hw","hw","hw","hw","hw"],"nframes":1,"hw_k":1.5}"#;
        let err = req(line).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidRequest);
        assert_eq!(err.field.as_deref(), Some("hw_k"));
    }

    #[test]
    fn negative_costs_are_rejected() {
        let line = r#"{"id":"r","mapping":["cpu0","cpu0","cpu0","cpu0","cpu0"],"nframes":1,"rtos_cycles":-1}"#;
        let err = req(line).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("rtos_cycles"));
        let line =
            r#"{"id":"r","mapping":["cpu0","cpu0","cpu0","cpu0","cpu0"],"nframes":1,"clock_ns":0}"#;
        assert_eq!(req(line).unwrap_err().field.as_deref(), Some("clock_ns"));
    }

    #[test]
    fn nan_costs_cannot_reach_validation() {
        // NaN/Infinity are not JSON: the wire parser stops them first.
        assert!(parse(r#"{"rtos_cycles":NaN}"#).is_err());
        assert!(parse(r#"{"hw_k":Infinity}"#).is_err());
        // And a float overflow (non-finite after parse) is also a parse
        // error, so validators only ever see finite numbers.
        assert!(parse(r#"{"rtos_cycles":1e400}"#).is_err());
    }

    #[test]
    fn nframes_bounds_are_enforced() {
        for bad in ["0", "4.5", "1000000000"] {
            let line = format!(
                r#"{{"id":"r","mapping":["cpu0","cpu0","cpu0","cpu0","cpu0"],"nframes":{bad}}}"#
            );
            assert_eq!(req(&line).unwrap_err().field.as_deref(), Some("nframes"));
        }
    }

    #[test]
    fn mapping_shape_and_labels_are_checked() {
        let short = r#"{"id":"r","mapping":["cpu0"],"nframes":1}"#;
        assert_eq!(req(short).unwrap_err().field.as_deref(), Some("mapping"));
        let bad = r#"{"id":"r","mapping":["cpu0","cpu0","gpu","cpu0","cpu0"],"nframes":1}"#;
        let err = req(bad).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("mapping"));
        assert!(err.message.contains("target 2"));
    }

    #[test]
    fn batch_validates_scenarios_independently() {
        let line = r#"{"id":"b","op":"batch","scenarios":[
            {"mapping":["cpu0","cpu0","cpu0","cpu0","cpu0"],"nframes":1},
            {"mapping":["cpu0","cpu0","cpu0","cpu0","cpu0"],"nframes":0}]}"#;
        let Request::Batch { id, scenarios } = req(line).unwrap() else {
            panic!("expected batch");
        };
        assert_eq!(id, "b");
        assert!(scenarios[0].is_ok());
        assert_eq!(
            scenarios[1].as_ref().unwrap_err().field.as_deref(),
            Some("nframes")
        );
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(req(r#"{"op":"ping"}"#).unwrap(), Request::Ping { id: None });
        assert_eq!(
            req(r#"{"op":"shutdown","id":"s"}"#).unwrap(),
            Request::Shutdown {
                id: Some("s".into())
            }
        );
        assert!(matches!(
            req(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats {
                id: None,
                reset: false
            }
        ));
        assert!(matches!(
            req(r#"{"op":"stats","reset":true}"#).unwrap(),
            Request::Stats { reset: true, .. }
        ));
        assert_eq!(
            req(r#"{"op":"telemetry","id":"t"}"#).unwrap(),
            Request::Telemetry {
                id: Some("t".into())
            }
        );
        assert_eq!(
            req(r#"{"op":"stats","reset":"yes"}"#)
                .unwrap_err()
                .field
                .as_deref(),
            Some("reset")
        );
        assert_eq!(
            req(r#"{"op":"fly"}"#).unwrap_err().field.as_deref(),
            Some("op")
        );
    }

    #[test]
    fn missing_id_is_rejected_but_salvageable_ids_survive() {
        let line = r#"{"mapping":["cpu0","cpu0","cpu0","cpu0","cpu0"],"nframes":1}"#;
        assert_eq!(req(line).unwrap_err().field.as_deref(), Some("id"));
        let v = parse(r#"{"id":"x","nframes":"bogus"}"#).unwrap();
        assert_eq!(salvage_id(&v).as_deref(), Some("x"));
    }
}
