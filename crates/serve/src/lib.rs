//! # scperf-serve — a concurrent simulation service
//!
//! Long-running scenario evaluation for the performance-estimation
//! stack: clients submit *scenarios* — a workload mapping plus
//! platform/resource parameters, a frame count and output options —
//! as JSON lines over stdin/stdout or TCP, and receive simulation
//! summaries (end time, cost, checksum, optional per-process report
//! and metrics) as JSON lines back.
//!
//! The service turns the one-shot simulation API
//! ([`scperf_core::SimConfig`] → [`scperf_core::Session`]) into shared
//! infrastructure:
//!
//! * requests execute on a bounded [`WorkerPool`](scperf_dse::WorkerPool)
//!   with admission control — saturation rejects immediately with
//!   `queue_full` + `retry_after_ms` instead of queueing unboundedly;
//! * segment-cost traces are memoized across requests through the
//!   [`SegmentCostCache`](scperf_dse::SegmentCostCache), so repeated
//!   scenarios replay bit-identically at a fraction of the host cost;
//! * per-request deadlines cancel runs mid-simulation;
//! * batches fan out over the pool and reassemble deterministically —
//!   the same batch renders bitwise-identical responses on one worker
//!   or eight;
//! * shutdown is graceful: accepted work drains before the process
//!   exits;
//! * hostile input cannot panic a worker: every parameter the
//!   estimation stack would assert on (NaN or negative costs,
//!   time-area weights outside `[0, 1]`, non-positive clocks) is
//!   rejected at the protocol boundary with a typed error naming the
//!   field.
//!
//! ```text
//! → {"id":"r1","mapping":["cpu0","cpu0","hw","cpu1","cpu0"],"nframes":4}
//! ← {"id":"r1","status":"ok","end_time_ps":...,"cost":4.5,"checksum":...}
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod json;
pub mod protocol;
pub mod render;
pub mod service;
pub mod stdio;
pub mod tcp;

pub use engine::Outcome;
pub use protocol::{ErrorCode, PlatformParams, Request, RequestError, Scenario};
pub use service::{Disposition, Responder, Service, ServiceConfig};
pub use tcp::{StopHandle, TcpServer};
