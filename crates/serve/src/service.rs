//! The service: admission control and concurrent execution.
//!
//! [`Service`] layers policy on top of the raw
//! [`scperf_dse::WorkerPool`]:
//!
//! * **Bounded queue + backpressure** — at most `queue_capacity` jobs
//!   may be pending (queued or running); requests beyond that are
//!   rejected immediately with a `queue_full` error carrying
//!   `retry_after_ms`, instead of building an unbounded backlog.
//! * **Deadlines** — a request's `deadline_ms` is measured from
//!   admission; expiry is detected both in the queue and mid-run (the
//!   engine steps the simulation and checks the host clock between
//!   chunks).
//! * **Batching** — a batch request fans its scenarios out over the
//!   pool; the response assembles per-scenario results in request
//!   order, so it is bitwise identical for any worker count.
//! * **Graceful shutdown** — [`Service::drain`] stops admission and
//!   blocks until every accepted job has run and its response has been
//!   delivered.
//!
//! Execution results are memoized through a shared
//! [`SegmentCostCache`]: the first run of a `(stage, resource, nframes)`
//! combination records per-segment cycle traces, later runs replay them
//! bit-identically at a fraction of the host cost.
//!
//! Sessions themselves come from a [`SessionPool`] (unless disabled via
//! [`ServiceConfig::pool_sessions`]): each request acquires a reusable
//! slot keyed by its scenario *shape*, and repeat-shape traffic forks a
//! warmed-up snapshot instead of rebuilding and re-estimating the
//! pipeline — see [`engine::execute_pooled`]. When every slot is live
//! the request is rejected with `pool_exhausted` plus a `retry_after_ms`
//! hint derived from the observed p90 run duration.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use scperf_core::{InstanceLimits, SessionPool};
use scperf_dse::{SegmentCostCache, WorkerPool};
use scperf_obs::{prom, LogHistogram, MetricValue, MetricsSnapshot};
use scperf_sync::Mutex;

use crate::engine;
use crate::json;
use crate::protocol::{ErrorCode, Request, RequestError, Scenario};
use crate::render;

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing simulations (and TCP connections).
    pub workers: usize,
    /// Maximum pending (queued + running) jobs before requests are
    /// rejected with `queue_full`.
    pub queue_capacity: usize,
    /// The `retry_after_ms` hint attached to `queue_full` rejections.
    pub retry_after_ms: u64,
    /// Whether to memoize segment-cost traces across requests.
    pub use_cache: bool,
    /// Flight-recorder depth: when non-zero, every run keeps roughly
    /// the last this-many kernel trace events in a ring, dumped to
    /// stderr if the run is cancelled by its deadline or panics.
    /// Zero (the default) disables tracing entirely.
    pub flight_recorder: usize,
    /// Session-pool slots. `None` (the default) sizes the pool to
    /// `workers + 1` — enough that a slot is always free while every
    /// worker is busy, so normal traffic never sees `pool_exhausted`.
    /// `Some(0)` disables pooling (every request builds a fresh
    /// session, the pre-pool behaviour); `Some(n)` caps the pool at
    /// `n` live sessions and rejects beyond that.
    pub pool_sessions: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            retry_after_ms: 50,
            use_cache: true,
            flight_recorder: 0,
            pool_sessions: None,
        }
    }
}

/// Where response lines go. Cloneable so pooled jobs can answer
/// out-of-order while the frontend keeps reading.
#[derive(Clone)]
pub struct Responder {
    send_fn: Arc<dyn Fn(&str) + Send + Sync>,
}

impl Responder {
    /// A responder calling `f` with each complete response line
    /// (without trailing newline).
    pub fn new(f: impl Fn(&str) + Send + Sync + 'static) -> Responder {
        Responder {
            send_fn: Arc::new(f),
        }
    }

    /// A responder appending `line + "\n"` to `w` (one `write_all` +
    /// flush per line, serialized by an internal lock).
    pub fn from_writer<W: Write + Send + 'static>(w: W) -> Responder {
        let w = Mutex::new(w);
        Responder::new(move |line| {
            let mut w = w.lock();
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
            let _ = w.flush();
        })
    }

    /// A responder collecting lines into a shared vector — for tests
    /// and benches.
    pub fn collector() -> (Responder, Arc<Mutex<Vec<String>>>) {
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        (
            Responder::new(move |line| sink.lock().push(line.to_string())),
            lines,
        )
    }

    /// Delivers one response line.
    pub fn send(&self, line: &str) {
        (self.send_fn)(line);
    }
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Responder").finish_non_exhaustive()
    }
}

/// What the frontend should do after a line was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Keep reading.
    Continue,
    /// A shutdown was requested: stop reading and drain.
    Shutdown,
}

#[derive(Debug, Default)]
struct Counters {
    received: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    invalid: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
    batches: AtomicU64,
    panics: AtomicU64,
    flight_dumps: AtomicU64,
    op_sim: AtomicU64,
    op_batch: AtomicU64,
    op_ping: AtomicU64,
    op_stats: AtomicU64,
    op_telemetry: AtomicU64,
    op_shutdown: AtomicU64,
    est_fast_charges: AtomicU64,
    est_site_hits: AtomicU64,
    est_site_misses: AtomicU64,
    est_dfg_arena_reuse: AtomicU64,
    est_prog_warm_hits: AtomicU64,
    est_prog_rejects: AtomicU64,
}

/// One coherent reading of every counter, taken by [`Counters::read`].
#[derive(Debug, Default, Clone, Copy)]
struct CounterValues {
    received: u64,
    accepted: u64,
    rejected: u64,
    invalid: u64,
    completed: u64,
    failed: u64,
    deadline_exceeded: u64,
    batches: u64,
    panics: u64,
    flight_dumps: u64,
    op_sim: u64,
    op_batch: u64,
    op_ping: u64,
    op_stats: u64,
    op_telemetry: u64,
    op_shutdown: u64,
    est_fast_charges: u64,
    est_site_hits: u64,
    est_site_misses: u64,
    est_dfg_arena_reuse: u64,
    est_prog_warm_hits: u64,
    est_prog_rejects: u64,
}

impl Counters {
    /// Reads every counter; with `reset`, each counter is atomically
    /// read-and-zeroed in one `swap`, so the returned snapshot *is*
    /// the value that was taken out — an increment racing the reset
    /// lands either in this snapshot or in the zeroed counter, never
    /// in neither. (The old reset snapshotted and then stored zero per
    /// counter; anything added between the two was silently lost.)
    fn read(&self, reset: bool) -> CounterValues {
        let take = |c: &AtomicU64| {
            if reset {
                c.swap(0, Ordering::Relaxed)
            } else {
                c.load(Ordering::Relaxed)
            }
        };
        CounterValues {
            received: take(&self.received),
            accepted: take(&self.accepted),
            rejected: take(&self.rejected),
            invalid: take(&self.invalid),
            completed: take(&self.completed),
            failed: take(&self.failed),
            deadline_exceeded: take(&self.deadline_exceeded),
            batches: take(&self.batches),
            panics: take(&self.panics),
            flight_dumps: take(&self.flight_dumps),
            op_sim: take(&self.op_sim),
            op_batch: take(&self.op_batch),
            op_ping: take(&self.op_ping),
            op_stats: take(&self.op_stats),
            op_telemetry: take(&self.op_telemetry),
            op_shutdown: take(&self.op_shutdown),
            est_fast_charges: take(&self.est_fast_charges),
            est_site_hits: take(&self.est_site_hits),
            est_site_misses: take(&self.est_site_misses),
            est_dfg_arena_reuse: take(&self.est_dfg_arena_reuse),
            est_prog_warm_hits: take(&self.est_prog_warm_hits),
            est_prog_rejects: take(&self.est_prog_rejects),
        }
    }
}

struct ServiceShared {
    cache: Option<SegmentCostCache>,
    /// Reusable sessions with per-shape warmed snapshots; `None` when
    /// pooling is disabled (`pool_sessions: Some(0)`).
    pool: Option<SessionPool>,
    draining: AtomicBool,
    counters: Counters,
    flight_recorder: usize,
    /// Fallback `retry_after_ms` until enough runs complete for
    /// [`ServiceShared::retry_hint`] to derive one from observation.
    retry_default: u64,
    started: Mutex<Instant>,
    /// Request latency (admission → response), in nanosecond ticks.
    latency: Mutex<LogHistogram>,
    /// Time spent queued before a worker picked the job up.
    queue_wait: Mutex<LogHistogram>,
    /// Session-run duration (engine execution only).
    run_duration: Mutex<LogHistogram>,
    /// Per-run kernel + estimator metrics, folded across every
    /// completed run: counters sum, gauges keep the latest run's value.
    sim_metrics: Mutex<MetricsSnapshot>,
}

impl ServiceShared {
    fn uptime_s(&self) -> f64 {
        self.started.lock().elapsed().as_secs_f64()
    }

    /// The `retry_after_ms` hint for a saturation rejection: the
    /// observed p90 run duration, rounded up to whole milliseconds —
    /// by then a slot/queue position has very likely freed — falling
    /// back to the configured default until any run has completed.
    fn retry_hint(&self) -> u64 {
        self.run_duration
            .lock()
            .quantile(0.9)
            .map(|ns| ((ns as f64 / 1e6).ceil() as u64).max(1))
            .unwrap_or(self.retry_default)
    }
}

/// The retry hint to attach to a worker-side failure: pool exhaustion
/// is the one retryable engine error (a slot frees as soon as any
/// in-flight run finishes).
fn retry_hint_for(shared: &ServiceShared, err: &RequestError) -> Option<u64> {
    (err.code == ErrorCode::PoolExhausted).then(|| shared.retry_hint())
}

/// The simulation service. See the [module docs](self).
pub struct Service {
    pool: WorkerPool,
    shared: Arc<ServiceShared>,
    queue_capacity: usize,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("pool", &self.pool)
            .field("queue_capacity", &self.queue_capacity)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Starts a service with `config.workers` worker threads.
    pub fn new(config: ServiceConfig) -> Service {
        let slots = config.pool_sessions.unwrap_or(config.workers.max(1) + 1);
        let session_pool = (slots > 0).then(|| {
            SessionPool::new(
                InstanceLimits {
                    max_sessions: slots,
                    ..InstanceLimits::default()
                },
                engine::pool_factory(config.flight_recorder),
            )
        });
        Service {
            pool: WorkerPool::new("serve", config.workers),
            shared: Arc::new(ServiceShared {
                cache: config.use_cache.then(SegmentCostCache::new),
                pool: session_pool,
                draining: AtomicBool::new(false),
                counters: Counters::default(),
                flight_recorder: config.flight_recorder,
                retry_default: config.retry_after_ms,
                started: Mutex::new(Instant::now()),
                latency: Mutex::new(LogHistogram::new()),
                queue_wait: Mutex::new(LogHistogram::new()),
                run_duration: Mutex::new(LogHistogram::new()),
                sim_metrics: Mutex::new(MetricsSnapshot::new()),
            }),
            queue_capacity: config.queue_capacity.max(1),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Jobs accepted but not yet finished.
    pub fn pending(&self) -> usize {
        self.pool.pending()
    }

    /// Handles one request line asynchronously: control ops are
    /// answered inline, simulation work is enqueued on the pool and
    /// answered through `responder` when it completes (possibly out of
    /// request order — responses carry the request id).
    pub fn handle_line(&self, line: &str, responder: &Responder) -> Disposition {
        let (request, disposition) = match self.parse_line(line, responder) {
            Some(pair) => pair,
            None => return Disposition::Continue,
        };
        if let Some(d) = disposition {
            return d;
        }
        match request {
            Request::Sim { id, scenario } => {
                if let Err((err, retry)) = self.admit(1) {
                    responder.send(&render::error(Some(&id), &err, retry));
                    return Disposition::Continue;
                }
                let shared = Arc::clone(&self.shared);
                let responder = responder.clone();
                let admitted = Instant::now();
                let submitted = self.pool.submit(move || {
                    let line = match run_scenario(&shared, &scenario, admitted) {
                        Ok(out) => render::ok_sim(&id, &scenario, &out),
                        Err(err) => {
                            let retry = retry_hint_for(&shared, &err);
                            render::error(Some(&id), &err, retry)
                        }
                    };
                    responder.send(&line);
                });
                debug_assert!(submitted, "pool outlives the service");
            }
            Request::Batch { id, scenarios } => {
                let runnable = scenarios.iter().filter(|s| s.is_ok()).count();
                if let Err((err, retry)) = self.admit(runnable) {
                    responder.send(&render::error(Some(&id), &err, retry));
                    return Disposition::Continue;
                }
                self.shared.counters.batches.fetch_add(1, Ordering::Relaxed);
                self.submit_batch(id, scenarios, runnable, responder);
            }
            Request::Ping { .. }
            | Request::Stats { .. }
            | Request::Telemetry { .. }
            | Request::Shutdown { .. } => {
                unreachable!("control ops are answered by parse_line")
            }
        }
        Disposition::Continue
    }

    /// Handles one request line synchronously on the calling thread:
    /// same protocol, but simulation work runs inline instead of being
    /// enqueued, and the response line is returned. Used by the TCP
    /// frontend, whose *connections* are pool jobs — executing inline
    /// keeps one connection from occupying two pool slots (and from
    /// deadlocking a single-worker service).
    pub fn handle_line_sync(&self, line: &str) -> (Option<String>, Disposition) {
        let (responder, collected) = Responder::collector();
        let (request, disposition) = match self.parse_line(line, &responder) {
            Some(pair) => pair,
            None => return (collected.lock().first().cloned(), Disposition::Continue),
        };
        if let Some(d) = disposition {
            return (collected.lock().first().cloned(), d);
        }
        let admitted = Instant::now();
        let line = match request {
            Request::Sim { id, scenario } => {
                match run_scenario(&self.shared, &scenario, admitted) {
                    Ok(out) => render::ok_sim(&id, &scenario, &out),
                    Err(err) => {
                        let retry = retry_hint_for(&self.shared, &err);
                        render::error(Some(&id), &err, retry)
                    }
                }
            }
            Request::Batch { id, scenarios } => {
                self.shared.counters.batches.fetch_add(1, Ordering::Relaxed);
                let items: Vec<String> = scenarios
                    .iter()
                    .enumerate()
                    .map(|(i, sc)| match sc {
                        Ok(sc) => match run_scenario(&self.shared, sc, admitted) {
                            Ok(out) => render::batch_item_ok(i, sc, &out),
                            Err(err) => render::batch_item_err(i, &err),
                        },
                        Err(err) => render::batch_item_err(i, err),
                    })
                    .collect();
                render::batch(&id, &items)
            }
            Request::Ping { .. }
            | Request::Stats { .. }
            | Request::Telemetry { .. }
            | Request::Shutdown { .. } => {
                unreachable!("control ops are answered by parse_line")
            }
        };
        (Some(line), Disposition::Continue)
    }

    /// Shared front half of both handle paths: parse, validate, count,
    /// and answer control ops. Returns `None` when the line was empty,
    /// a malformed/invalid line was already answered, `Some((req,
    /// Some(d)))` when a control op was answered with disposition `d`,
    /// and `Some((req, None))` when simulation work remains to be done.
    #[allow(clippy::type_complexity)]
    fn parse_line(
        &self,
        line: &str,
        responder: &Responder,
    ) -> Option<(Request, Option<Disposition>)> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let counters = &self.shared.counters;
        counters.received.fetch_add(1, Ordering::Relaxed);
        let value = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                counters.invalid.fetch_add(1, Ordering::Relaxed);
                let err = RequestError {
                    code: ErrorCode::Parse,
                    field: None,
                    message: e.to_string(),
                };
                responder.send(&render::error(None, &err, None));
                return None;
            }
        };
        let request = match Request::from_json(&value) {
            Ok(r) => r,
            Err(err) => {
                counters.invalid.fetch_add(1, Ordering::Relaxed);
                let id = crate::protocol::salvage_id(&value);
                responder.send(&render::error(id.as_deref(), &err, None));
                return None;
            }
        };
        match &request {
            Request::Sim { .. } => &counters.op_sim,
            Request::Batch { .. } => &counters.op_batch,
            Request::Ping { .. } => &counters.op_ping,
            Request::Stats { .. } => &counters.op_stats,
            Request::Telemetry { .. } => &counters.op_telemetry,
            Request::Shutdown { .. } => &counters.op_shutdown,
        }
        .fetch_add(1, Ordering::Relaxed);
        match &request {
            Request::Ping { id } => {
                responder.send(&render::pong(id.as_deref()));
                Some((request, Some(Disposition::Continue)))
            }
            Request::Stats { id, reset } => {
                // Read-and-reset in one pass: the snapshot below *is*
                // what the atomic swaps took out, so updates racing the
                // reset are either in this reply or in the next period.
                let uptime = self.shared.uptime_s();
                responder.send(&render::stats(
                    id.as_deref(),
                    uptime,
                    *reset,
                    &self.metrics_snapshot(*reset),
                ));
                Some((request, Some(Disposition::Continue)))
            }
            Request::Telemetry { id } => {
                let body = prom::render(&self.telemetry());
                responder.send(&render::telemetry(id.as_deref(), &body));
                Some((request, Some(Disposition::Continue)))
            }
            Request::Shutdown { id } => {
                responder.send(&render::shutdown_ack(id.as_deref()));
                Some((request, Some(Disposition::Shutdown)))
            }
            _ => Some((request, None)),
        }
    }

    /// Enqueues an arbitrary job (the TCP frontend's connection
    /// handlers). The caller is responsible for admission.
    pub(crate) fn submit_job(&self, job: impl FnOnce() + Send + 'static) -> bool {
        self.pool.submit(job)
    }

    /// Admission control: room for `njobs` more, unless draining or
    /// saturated.
    pub(crate) fn admit(&self, njobs: usize) -> Result<(), (RequestError, Option<u64>)> {
        let counters = &self.shared.counters;
        if self.shared.draining.load(Ordering::SeqCst) {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err((
                RequestError {
                    code: ErrorCode::ShuttingDown,
                    field: None,
                    message: "service is draining".into(),
                },
                None,
            ));
        }
        if self.pool.pending() + njobs > self.queue_capacity {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err((
                RequestError {
                    code: ErrorCode::QueueFull,
                    field: None,
                    message: format!(
                        "queue is full ({} pending, capacity {})",
                        self.pool.pending(),
                        self.queue_capacity
                    ),
                },
                // Derived from the observed p90 run duration once any
                // run has completed; the configured default before.
                Some(self.shared.retry_hint()),
            ));
        }
        counters.accepted.fetch_add(njobs as u64, Ordering::Relaxed);
        Ok(())
    }

    fn submit_batch(
        &self,
        id: String,
        scenarios: Vec<Result<Scenario, RequestError>>,
        runnable: usize,
        responder: &Responder,
    ) {
        // Pre-render validation failures; their slots are final.
        let slots: Vec<Option<String>> = scenarios
            .iter()
            .enumerate()
            .map(|(i, sc)| match sc {
                Ok(_) => None,
                Err(err) => Some(render::batch_item_err(i, err)),
            })
            .collect();
        if runnable == 0 {
            let items: Vec<String> = slots.into_iter().map(|s| s.expect("all final")).collect();
            responder.send(&render::batch(&id, &items));
            return;
        }
        struct BatchState {
            id: String,
            slots: Mutex<Vec<Option<String>>>,
            remaining: AtomicUsize,
            responder: Responder,
        }
        let state = Arc::new(BatchState {
            id,
            slots: Mutex::new(slots),
            remaining: AtomicUsize::new(runnable),
            responder: responder.clone(),
        });
        let admitted = Instant::now();
        for (i, sc) in scenarios.into_iter().enumerate() {
            let Ok(scenario) = sc else { continue };
            let shared = Arc::clone(&self.shared);
            let state = Arc::clone(&state);
            let submitted = self.pool.submit(move || {
                let item = match run_scenario(&shared, &scenario, admitted) {
                    Ok(out) => render::batch_item_ok(i, &scenario, &out),
                    Err(err) => render::batch_item_err(i, &err),
                };
                state.slots.lock()[i] = Some(item);
                if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let items: Vec<String> = state
                        .slots
                        .lock()
                        .iter()
                        .cloned()
                        .map(|s| s.expect("every slot filled"))
                        .collect();
                    state.responder.send(&render::batch(&state.id, &items));
                }
            });
            debug_assert!(submitted, "pool outlives the service");
        }
    }

    /// The service's observability snapshot: `serve.*` counters,
    /// latency percentiles, queue depth, pool and cache statistics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics_snapshot(false)
    }

    /// [`Service::metrics`], optionally consuming the state it reads:
    /// with `reset`, every counter is taken with an atomic swap and
    /// each histogram is summarized-then-cleared under one lock hold,
    /// so the returned snapshot accounts for every update exactly once
    /// even while workers are hammering the counters. The folded sim
    /// metrics and the uptime clock restart too. (Pool and trace-cache
    /// statistics are lifetime totals of those components and are not
    /// reset.)
    fn metrics_snapshot(&self, reset: bool) -> MetricsSnapshot {
        let c = self.shared.counters.read(reset);
        let mut m = MetricsSnapshot::new();
        m.set_counter("serve.requests", c.received);
        m.set_counter("serve.accepted", c.accepted);
        m.set_counter("serve.rejected", c.rejected);
        m.set_counter("serve.invalid", c.invalid);
        m.set_counter("serve.completed", c.completed);
        m.set_counter("serve.failed", c.failed);
        m.set_counter("serve.deadline_exceeded", c.deadline_exceeded);
        m.set_counter("serve.batches", c.batches);
        m.set_counter("serve.panics", c.panics);
        m.set_counter("serve.flight_dumps", c.flight_dumps);
        m.set_counter("serve.op.sim", c.op_sim);
        m.set_counter("serve.op.batch", c.op_batch);
        m.set_counter("serve.op.ping", c.op_ping);
        m.set_counter("serve.op.stats", c.op_stats);
        m.set_counter("serve.op.telemetry", c.op_telemetry);
        m.set_counter("serve.op.shutdown", c.op_shutdown);
        m.set_gauge("serve.uptime_s", self.shared.uptime_s());
        m.set_counter("serve.workers", self.pool.workers() as u64);
        m.set_counter("serve.queue.pending", self.pool.pending() as u64);
        m.set_counter("serve.queue.capacity", self.queue_capacity as u64);
        m.set_counter("est.charge.fast", c.est_fast_charges);
        m.set_counter("est.site_cache.hit", c.est_site_hits);
        m.set_counter("est.site_cache.miss", c.est_site_misses);
        m.set_counter("est.dfg.arena_reuse", c.est_dfg_arena_reuse);
        // Cost-program accounting, summed across completed runs. Hits
        // and misses mirror the site cache (a replayed region *is* a
        // compiled-program apply — see `scperf_core` model metrics);
        // warm hits count misses satisfied by the cross-worker program
        // set, rejects count fingerprint-mismatched warm sets.
        m.set_counter("est.prog.hits", c.est_site_hits);
        m.set_counter("est.prog.misses", c.est_site_misses);
        m.set_counter("est.prog.warm_hits", c.est_prog_warm_hits);
        m.set_counter("est.prog.rejects", c.est_prog_rejects);
        if let Some(pool) = &self.shared.pool {
            m.merge(pool.metrics());
        }
        if let Some(cache) = &self.shared.cache {
            let stats = cache.stats();
            m.set_counter("serve.cache.hits", stats.hits);
            m.set_counter("serve.cache.misses", stats.misses);
            m.set_counter("serve.cache.entries", stats.entries as u64);
            m.set_counter("serve.cache.evictions", stats.evictions);
            m.set_gauge("serve.cache.hit_rate", stats.hit_rate());
            m.set_counter("est.prog.published", stats.programs as u64);
        }
        for (hist, prefix) in [
            (&self.shared.latency, "serve.latency"),
            (&self.shared.queue_wait, "serve.queue_wait"),
            (&self.shared.run_duration, "serve.run"),
        ] {
            let mut hist = hist.lock();
            if let Some(summary) = hist.summary() {
                summary.export(&mut m, prefix);
            }
            if reset {
                hist.clear();
            }
        }
        if reset {
            *self.shared.sim_metrics.lock() = MetricsSnapshot::new();
            *self.shared.started.lock() = Instant::now();
        }
        m
    }

    /// The full telemetry state behind the `telemetry` op: the folded
    /// per-run kernel + estimator metrics (`kernel.*` including
    /// `kernel.sched.*`, `est.*` including `est.res.*` — counters
    /// summed across every completed run) plus every service-level
    /// entry of [`Service::metrics`] whose name is not already claimed
    /// by the fold (the estimator hot-path counters appear in both and
    /// carry the same totals, so the fold's copy wins instead of
    /// double-counting).
    pub fn telemetry(&self) -> MetricsSnapshot {
        let mut t = self.shared.sim_metrics.lock().clone();
        for (name, value) in self.metrics().iter() {
            if t.counter(name).is_some() || t.gauge(name).is_some() {
                continue;
            }
            match value {
                MetricValue::Counter(v) => t.set_counter(name, *v),
                MetricValue::Gauge(v) => t.set_gauge(name, *v),
            }
        }
        t
    }

    /// Graceful shutdown: stops admitting new requests and blocks until
    /// every accepted job has finished and answered. The worker threads
    /// are joined when the `Service` is dropped.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.pool.wait_idle();
    }

    /// Whether [`Service::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

/// Executes one scenario and maintains the shared counters, latency
/// histograms and folded telemetry. Shared by the pooled (stdio) and
/// inline (TCP) paths.
fn run_scenario(
    shared: &ServiceShared,
    scenario: &Scenario,
    admitted: Instant,
) -> Result<engine::Outcome, RequestError> {
    shared
        .queue_wait
        .lock()
        .record_us(admitted.elapsed().as_secs_f64() * 1e6);
    let deadline = scenario
        .deadline_ms
        .map(|ms| admitted + Duration::from_millis(ms));
    let run_started = Instant::now();
    let result = match &shared.pool {
        Some(pool) => engine::execute_pooled(
            scenario,
            pool,
            shared.cache.as_ref(),
            deadline,
            shared.flight_recorder,
        ),
        None => engine::execute(
            scenario,
            shared.cache.as_ref(),
            deadline,
            shared.flight_recorder,
        ),
    };
    let c = &shared.counters;
    match &result {
        Ok(out) => {
            c.completed.fetch_add(1, Ordering::Relaxed);
            c.est_fast_charges
                .fetch_add(out.hot.fast_charges, Ordering::Relaxed);
            c.est_site_hits
                .fetch_add(out.hot.site_hits, Ordering::Relaxed);
            c.est_site_misses
                .fetch_add(out.hot.site_misses, Ordering::Relaxed);
            c.est_dfg_arena_reuse
                .fetch_add(out.hot.dfg_arena_reuse, Ordering::Relaxed);
            c.est_prog_warm_hits
                .fetch_add(out.hot.prog_warm_hits, Ordering::Relaxed);
            c.est_prog_rejects
                .fetch_add(out.hot.prog_rejects, Ordering::Relaxed);
            shared.sim_metrics.lock().merge(out.sim_metrics.clone());
        }
        Err(err) if err.code == ErrorCode::DeadlineExceeded => {
            c.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            if shared.flight_recorder > 0 {
                c.flight_dumps.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(err) if err.code == ErrorCode::PoolExhausted => {
            // Saturation, not failure: the request never ran.
            c.rejected.fetch_add(1, Ordering::Relaxed);
        }
        Err(err) => {
            c.failed.fetch_add(1, Ordering::Relaxed);
            // The engine converts a caught panic into a Sim error with
            // this message prefix (see `engine::execute`).
            if err.message.starts_with("worker panicked") {
                c.panics.fetch_add(1, Ordering::Relaxed);
                if shared.flight_recorder > 0 {
                    c.flight_dumps.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    shared
        .run_duration
        .lock()
        .record_us(run_started.elapsed().as_secs_f64() * 1e6);
    shared
        .latency
        .lock()
        .record_us(admitted.elapsed().as_secs_f64() * 1e6);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn read_and_reset_never_loses_a_counter_update() {
        // Regression for the old snapshot-then-store reset: an
        // increment landing between a counter's snapshot and its store
        // to zero was silently dropped. With swap-based read-and-reset
        // every increment must appear in exactly one period snapshot
        // (or in the final read), so the periods plus the remainder sum
        // to exactly what the writers added.
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 50_000;
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));

        let reader = {
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut harvested = 0_u64;
                while !stop.load(Ordering::SeqCst) {
                    harvested += counters.read(true).received;
                }
                harvested
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                let counters = Arc::clone(&counters);
                thread::spawn(move || {
                    for _ in 0..PER_WRITER {
                        counters.received.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        let harvested = reader.join().unwrap();
        let leftover = counters.read(true).received;
        assert_eq!(
            harvested + leftover,
            WRITERS as u64 * PER_WRITER,
            "every increment must land in exactly one snapshot"
        );
    }

    #[test]
    fn plain_reads_do_not_consume() {
        let counters = Counters::default();
        counters.completed.fetch_add(7, Ordering::Relaxed);
        assert_eq!(counters.read(false).completed, 7);
        assert_eq!(counters.read(false).completed, 7, "load must not zero");
        assert_eq!(counters.read(true).completed, 7, "swap takes the value");
        assert_eq!(counters.read(false).completed, 0);
    }
}
