//! Response rendering: one JSON object per line, built with the
//! workspace's [`JsonWriter`].
//!
//! Response payloads are deterministic by construction — host-timing
//! fields (`elapsed_us`, `replayed_stages`) appear only when the
//! request opted in with `"timing": true` — so the same scenario batch
//! renders bitwise-identical lines whether the service ran it on one
//! worker or eight.

use scperf_obs::json::JsonWriter;
use scperf_obs::MetricsSnapshot;

use crate::engine::Outcome;
use crate::protocol::{RequestError, Scenario};

fn id_and_status(w: &mut JsonWriter, id: Option<&str>, status: &str) {
    if let Some(id) = id {
        w.key("id");
        w.value_str(id);
    }
    w.key("status");
    w.value_str(status);
}

/// Renders a successful single-scenario response.
pub fn ok_sim(id: &str, sc: &Scenario, out: &Outcome) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    id_and_status(&mut w, Some(id), "ok");
    sim_payload(&mut w, sc, out);
    w.end_object();
    w.finish()
}

/// Renders one element of a batch response's `results` array: the same
/// payload as [`ok_sim`], keyed by `index` instead of `id`.
pub fn batch_item_ok(index: usize, sc: &Scenario, out: &Outcome) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("index");
    w.value_u64(index as u64);
    w.key("status");
    w.value_str("ok");
    sim_payload(&mut w, sc, out);
    w.end_object();
    w.finish()
}

/// Renders one failed element of a batch response's `results` array.
pub fn batch_item_err(index: usize, err: &RequestError) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("index");
    w.value_u64(index as u64);
    w.key("status");
    w.value_str("error");
    error_payload(&mut w, err, None);
    w.end_object();
    w.finish()
}

/// Wraps pre-rendered batch items (already index-ordered) into the
/// batch response line.
pub fn batch(id: &str, items: &[String]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    id_and_status(&mut w, Some(id), "ok");
    w.key("results");
    w.end_object();
    let mut line = w.finish();
    // Splice the pre-rendered items in as the value of "results"; every
    // item is a complete JSON object, so plain concatenation stays
    // valid JSON.
    line.truncate(line.len() - 1); // drop '}'
    line.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(item);
    }
    line.push_str("]}");
    line
}

/// Renders an error response. `retry_after_ms` is set on backpressure
/// rejections.
pub fn error(id: Option<&str>, err: &RequestError, retry_after_ms: Option<u64>) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    id_and_status(&mut w, id, "error");
    error_payload(&mut w, err, retry_after_ms);
    w.end_object();
    w.finish()
}

/// Renders the ping reply.
pub fn pong(id: Option<&str>) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    id_and_status(&mut w, id, "ok");
    w.key("op");
    w.value_str("pong");
    w.end_object();
    w.finish()
}

/// Renders the stats reply around a metrics snapshot. `reset` echoes
/// whether the request asked for a read-and-reset.
pub fn stats(id: Option<&str>, uptime_s: f64, reset: bool, metrics: &MetricsSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    id_and_status(&mut w, id, "ok");
    w.key("op");
    w.value_str("stats");
    w.key("uptime_s");
    w.value_f64(uptime_s);
    if reset {
        w.key("reset");
        w.value_bool(true);
    }
    w.key("metrics");
    metrics.write_json(&mut w);
    w.end_object();
    w.finish()
}

/// Renders the telemetry reply: the Prometheus text exposition of the
/// service's full metric state, carried as one JSON string field.
pub fn telemetry(id: Option<&str>, body: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    id_and_status(&mut w, id, "ok");
    w.key("op");
    w.value_str("telemetry");
    w.key("content_type");
    w.value_str("text/plain; version=0.0.4");
    w.key("body");
    w.value_str(body);
    w.end_object();
    w.finish()
}

/// Renders the shutdown acknowledgement (sent before the drain starts).
pub fn shutdown_ack(id: Option<&str>) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    id_and_status(&mut w, id, "ok");
    w.key("op");
    w.value_str("shutdown");
    w.key("draining");
    w.value_bool(true);
    w.end_object();
    w.finish()
}

fn error_payload(w: &mut JsonWriter, err: &RequestError, retry_after_ms: Option<u64>) {
    w.key("code");
    w.value_str(err.code.as_str());
    if let Some(field) = &err.field {
        w.key("field");
        w.value_str(field);
    }
    w.key("message");
    w.value_str(&err.message);
    if let Some(ms) = retry_after_ms {
        w.key("retry_after_ms");
        w.value_u64(ms);
    }
}

fn sim_payload(w: &mut JsonWriter, sc: &Scenario, out: &Outcome) {
    w.key("end_time_ps");
    w.value_u64(out.summary.end_time.as_ps());
    w.key("end_time");
    w.value_str(&out.summary.end_time.to_string());
    w.key("deltas");
    w.value_u64(out.summary.deltas);
    w.key("activations");
    w.value_u64(out.summary.activations);
    w.key("cost");
    w.value_f64(out.cost);
    w.key("checksum");
    w.value_i64(out.checksum as i64);
    if sc.want_timing {
        w.key("elapsed_us");
        w.value_f64(out.elapsed.as_secs_f64() * 1e6);
        w.key("replayed_stages");
        w.value_u64(out.replayed_stages as u64);
    }
    if let Some(report) = &out.report {
        w.key("report");
        w.begin_object();
        w.key("total_estimated_time_ps");
        w.value_u64(report.total_estimated_time().as_ps());
        w.key("processes");
        w.begin_array();
        for p in &report.processes {
            w.begin_object();
            w.key("name");
            w.value_str(&p.name);
            w.key("resource");
            w.value_str(&p.resource_name);
            w.key("total_cycles");
            w.value_f64(p.total_cycles);
            w.key("total_time_ps");
            w.value_u64(p.total_time.as_ps());
            w.key("rtos_time_ps");
            w.value_u64(p.rtos_time.as_ps());
            w.key("segment_executions");
            w.value_u64(p.segment_executions);
            w.end_object();
        }
        w.end_array();
        w.key("resources");
        w.begin_array();
        for r in &report.resources {
            w.begin_object();
            w.key("name");
            w.value_str(&r.name);
            w.key("busy_time_ps");
            w.value_u64(r.busy_time.as_ps());
            w.key("rtos_time_ps");
            w.value_u64(r.rtos_time.as_ps());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    if let Some(metrics) = &out.metrics {
        w.key("metrics");
        metrics.write_json(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::protocol::ErrorCode;

    #[test]
    fn error_lines_parse_back() {
        let err = RequestError::invalid("hw_k", "must lie in [0, 1]");
        let line = error(Some("r1"), &err, None);
        let v = parse(&line).expect("valid JSON");
        assert_eq!(v.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("code").unwrap().as_str(), Some("invalid_request"));
        assert_eq!(v.get("field").unwrap().as_str(), Some("hw_k"));
    }

    #[test]
    fn backpressure_rejections_carry_retry_after() {
        let err = RequestError {
            code: ErrorCode::QueueFull,
            field: None,
            message: "queue full".into(),
        };
        let v = parse(&error(Some("r"), &err, Some(50))).unwrap();
        assert_eq!(v.get("retry_after_ms"), Some(&Json::Num(50.0)));
    }

    #[test]
    fn batch_splicing_stays_valid_json() {
        let items = vec![
            batch_item_err(0, &RequestError::invalid("nframes", "missing")),
            batch_item_err(1, &RequestError::invalid("mapping", "bad")),
        ];
        let v = parse(&batch("b1", &items)).expect("valid JSON");
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].get("index"), Some(&Json::Num(1.0)));
    }

    #[test]
    fn control_replies_parse_back() {
        assert!(parse(&pong(None)).unwrap().get("id").is_none());
        let v = parse(&shutdown_ack(Some("s"))).unwrap();
        assert_eq!(v.get("draining").unwrap().as_bool(), Some(true));
        let mut m = MetricsSnapshot::new();
        m.set_counter("serve.requests", 3);
        let v = parse(&stats(None, 1.5, true, &m)).unwrap();
        assert_eq!(
            v.get("metrics").unwrap().get("serve.requests"),
            Some(&Json::Num(3.0))
        );
        assert_eq!(v.get("uptime_s"), Some(&Json::Num(1.5)));
        assert_eq!(v.get("reset").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn telemetry_reply_carries_the_exposition_body() {
        let body = "# TYPE serve_requests counter\nserve_requests 3\n";
        let v = parse(&telemetry(Some("t"), body)).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("t"));
        assert_eq!(v.get("op").unwrap().as_str(), Some("telemetry"));
        assert_eq!(
            v.get("content_type").unwrap().as_str(),
            Some("text/plain; version=0.0.4")
        );
        assert_eq!(v.get("body").unwrap().as_str(), Some(body));
    }
}
