//! Service-level behaviour: backpressure, deadlines, graceful drain,
//! determinism across worker counts, and both frontends end to end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use scperf_serve::json::{parse, Json};
use scperf_serve::{Disposition, Responder, Service, ServiceConfig, TcpServer};

fn service(workers: usize, queue: usize) -> Service {
    Service::new(ServiceConfig {
        workers,
        queue_capacity: queue,
        retry_after_ms: 25,
        ..ServiceConfig::default()
    })
}

fn sim_line(id: &str, mapping: &str, nframes: usize, extra: &str) -> String {
    format!(r#"{{"id":"{id}","mapping":[{mapping}],"nframes":{nframes}{extra}}}"#)
}

const ALL_CPU0: &str = r#""cpu0","cpu0","cpu0","cpu0","cpu0""#;
const MIXED: &str = r#""cpu0","cpu1","hw","cpu0","cpu1""#;

fn wait_for_lines(lines: &Arc<scperf_sync::Mutex<Vec<String>>>, n: usize) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        {
            let got = lines.lock();
            if got.len() >= n {
                return got.clone();
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {n} responses"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn field<'j>(v: &'j Json, key: &str) -> &'j Json {
    v.get(key)
        .unwrap_or_else(|| panic!("missing {key:?} in {v:?}"))
}

#[test]
fn requests_complete_and_responses_carry_ids() {
    let svc = service(2, 8);
    let (responder, lines) = Responder::collector();
    for i in 0..3 {
        let d = svc.handle_line(&sim_line(&format!("r{i}"), ALL_CPU0, 1, ""), &responder);
        assert_eq!(d, Disposition::Continue);
    }
    let got = wait_for_lines(&lines, 3);
    let mut ids: Vec<String> = got
        .iter()
        .map(|l| {
            let v = parse(l).expect("valid response JSON");
            assert_eq!(field(&v, "status").as_str(), Some("ok"));
            assert!(field(&v, "end_time_ps").as_u64().unwrap() > 0);
            field(&v, "id").as_str().unwrap().to_string()
        })
        .collect();
    ids.sort();
    assert_eq!(ids, ["r0", "r1", "r2"]);
    svc.drain();
}

#[test]
fn queue_saturation_rejects_with_retry_after() {
    // One worker, queue of one: the second concurrent request must be
    // rejected while the first still runs.
    let svc = service(1, 1);
    let (responder, lines) = Responder::collector();
    svc.handle_line(&sim_line("slow", ALL_CPU0, 64, ""), &responder);
    let mut rejected = 0;
    for i in 0..8 {
        svc.handle_line(&sim_line(&format!("r{i}"), ALL_CPU0, 1, ""), &responder);
        let got = lines.lock().clone();
        rejected = got.iter().filter(|l| l.contains("\"queue_full\"")).count();
        if rejected > 0 {
            break;
        }
    }
    assert!(rejected > 0, "no request was rejected at capacity 1");
    let got = lines.lock().clone();
    let reject = got
        .iter()
        .find(|l| l.contains("\"queue_full\""))
        .expect("rejection present");
    let v = parse(reject).unwrap();
    assert_eq!(field(&v, "status").as_str(), Some("error"));
    assert_eq!(field(&v, "retry_after_ms").as_u64(), Some(25));
    svc.drain();
    let m = svc.metrics();
    assert!(m.counter("serve.rejected").unwrap() > 0);
}

#[test]
fn deadlines_expire_mid_run_and_in_queue() {
    let svc = service(1, 8);
    let (responder, lines) = Responder::collector();
    // Long scenario, 1ms budget: expires mid-run.
    svc.handle_line(
        &sim_line("dl", ALL_CPU0, 128, r#","deadline_ms":1"#),
        &responder,
    );
    // Queued behind it with a budget shorter than the head-of-line
    // run: expires before it even starts.
    svc.handle_line(
        &sim_line("q", ALL_CPU0, 128, r#","deadline_ms":1"#),
        &responder,
    );
    let got = wait_for_lines(&lines, 2);
    let by_id = |id: &str| {
        let line = got
            .iter()
            .find(|l| parse(l).unwrap().get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no response for {id}"));
        parse(line).unwrap()
    };
    let dl = by_id("dl");
    assert_eq!(field(&dl, "code").as_str(), Some("deadline_exceeded"));
    assert!(field(&dl, "message").as_str().unwrap().contains("mid-run"));
    let q = by_id("q");
    assert_eq!(field(&q, "code").as_str(), Some("deadline_exceeded"));
    svc.drain();
    assert_eq!(svc.metrics().counter("serve.deadline_exceeded"), Some(2));
}

#[test]
fn drain_finishes_every_accepted_request() {
    let svc = service(2, 16);
    let (responder, lines) = Responder::collector();
    for i in 0..6 {
        svc.handle_line(&sim_line(&format!("r{i}"), MIXED, 2, ""), &responder);
    }
    // Drain immediately: all six must still be answered, successfully.
    svc.drain();
    let got = lines.lock().clone();
    assert_eq!(got.len(), 6);
    for l in &got {
        assert_eq!(field(&parse(l).unwrap(), "status").as_str(), Some("ok"));
    }
    // And new work is refused while draining.
    svc.handle_line(&sim_line("late", ALL_CPU0, 1, ""), &responder);
    let last = lines.lock().last().cloned().unwrap();
    assert!(last.contains("\"shutting_down\""), "got: {last}");
}

#[test]
fn batches_are_bitwise_identical_across_worker_counts() {
    // The same batch — mixed mappings, parameters, one invalid entry —
    // must render the same bytes from a 1-worker and an 8-worker
    // service: results are index-ordered and payloads carry no host
    // timing.
    let batch = r#"{"id":"b","op":"batch","scenarios":[
        {"mapping":["cpu0","cpu0","cpu0","cpu0","cpu0"],"nframes":2},
        {"mapping":["cpu0","cpu1","hw","cpu0","cpu1"],"nframes":2},
        {"mapping":["hw","hw","hw","hw","hw"],"nframes":1,"hw_k":0.25},
        {"mapping":["cpu0","cpu0","cpu0","cpu0","cpu0"],"nframes":0},
        {"mapping":["cpu1","cpu1","cpu1","cpu1","cpu1"],"nframes":3,"clock_ns":20,"report":true}
    ]}"#
    .replace('\n', "");
    let mut outputs = Vec::new();
    for workers in [1, 8] {
        let svc = service(workers, 16);
        let (responder, lines) = Responder::collector();
        assert_eq!(svc.handle_line(&batch, &responder), Disposition::Continue);
        let got = wait_for_lines(&lines, 1);
        outputs.push(got[0].clone());
        svc.drain();
    }
    assert_eq!(
        outputs[0], outputs[1],
        "batch responses differ between 1 and 8 workers"
    );
    let v = parse(&outputs[0]).unwrap();
    let results = field(&v, "results").as_arr().unwrap();
    assert_eq!(results.len(), 5);
    assert_eq!(field(&results[3], "status").as_str(), Some("error"));
    assert_eq!(field(&results[3], "field").as_str(), Some("nframes"));
    assert_eq!(field(&results[4], "status").as_str(), Some("ok"));
    assert!(results[4].get("report").is_some());
}

#[test]
fn repeated_scenarios_hit_the_pool_without_changing_results() {
    let svc = service(2, 8);
    let (responder, lines) = Responder::collector();
    for i in 0..4 {
        svc.handle_line(&sim_line(&format!("r{i}"), MIXED, 2, ""), &responder);
    }
    svc.drain();
    let got = lines.lock().clone();
    let times: Vec<u64> = got
        .iter()
        .map(|l| field(&parse(l).unwrap(), "end_time_ps").as_u64().unwrap())
        .collect();
    assert!(times.windows(2).all(|w| w[0] == w[1]), "times: {times:?}");
    let m = svc.metrics();
    // The first-of-shape run publishes its snapshot before the worker
    // picks up another job, so with 2 workers and 4 identical requests
    // at least the last two fork the warmed snapshot instead of
    // touching the trace cache.
    assert!(m.counter("pool.hits").unwrap() >= 2, "{m}");
    assert!(m.counter("pool.forks").unwrap() >= 2, "{m}");
    assert_eq!(m.counter("pool.exhausted"), Some(0), "{m}");
    assert!(m.counter("serve.latency.count").is_some());
}

#[test]
fn disabling_the_pool_restores_per_request_sessions() {
    let mut config = ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        retry_after_ms: 25,
        ..ServiceConfig::default()
    };
    config.pool_sessions = Some(0);
    let svc = Service::new(config);
    let (responder, lines) = Responder::collector();
    for i in 0..3 {
        svc.handle_line(&sim_line(&format!("r{i}"), MIXED, 2, ""), &responder);
    }
    svc.drain();
    let got = lines.lock().clone();
    let times: Vec<u64> = got
        .iter()
        .map(|l| field(&parse(l).unwrap(), "end_time_ps").as_u64().unwrap())
        .collect();
    assert!(times.windows(2).all(|w| w[0] == w[1]), "times: {times:?}");
    let m = svc.metrics();
    assert!(m.counter("pool.hits").is_none(), "no pool metrics: {m}");
    // Per-request sessions still memoize segment traces.
    assert!(m.counter("serve.cache.hits").unwrap() > 0, "{m}");
}

#[test]
fn stdio_frontend_round_trips_and_shuts_down() {
    let svc = service(2, 8);
    let input = format!(
        "{}\n{}\nnot json\n{}\n",
        r#"{"op":"ping"}"#,
        sim_line("s1", MIXED, 1, ""),
        r#"{"op":"shutdown","id":"bye"}"#
    );
    let (responder, lines) = Responder::collector();
    scperf_serve::stdio::serve_reader(&svc, BufReader::new(input.as_bytes()), &responder);
    // serve_reader returns only after the drain: every line answered.
    let got = lines.lock().clone();
    assert_eq!(got.len(), 4);
    assert!(got.iter().any(|l| l.contains("\"pong\"")));
    assert!(got.iter().any(|l| l.contains("\"parse_error\"")));
    assert!(got.iter().any(|l| l.contains("\"s1\"")));
    assert!(got.iter().any(|l| l.contains("\"draining\":true")));
}

#[test]
fn tcp_frontend_serves_concurrent_connections() {
    let svc = Arc::new(service(2, 8));
    let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&svc)).expect("bind");
    let addr = server.local_addr();
    let stop = server.stop_handle();
    let server_thread = std::thread::spawn(move || server.run());

    let request_on = |mapping: &'static str, id: &'static str| {
        std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("connect");
            writeln!(conn, "{}", sim_line(id, mapping, 1, "")).unwrap();
            let mut reply = String::new();
            BufReader::new(conn).read_line(&mut reply).unwrap();
            reply
        })
    };
    let a = request_on(ALL_CPU0, "a");
    let b = request_on(MIXED, "b");
    let ra = parse(&a.join().unwrap()).unwrap();
    let rb = parse(&b.join().unwrap()).unwrap();
    assert_eq!(field(&ra, "status").as_str(), Some("ok"));
    assert_eq!(field(&rb, "status").as_str(), Some("ok"));
    assert_eq!(field(&ra, "id").as_str(), Some("a"));

    // Stats over TCP reflects the served requests.
    let mut conn = TcpStream::connect(addr).expect("connect");
    writeln!(conn, r#"{{"op":"stats"}}"#).unwrap();
    let mut reply = String::new();
    BufReader::new(conn.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    let v = parse(&reply).unwrap();
    let metrics = field(&v, "metrics");
    assert!(field(metrics, "serve.completed").as_u64().unwrap() >= 2);
    // The estimator hot-path counters accumulate across served runs.
    assert!(field(metrics, "est.charge.fast").as_u64().unwrap() > 0);
    assert!(field(metrics, "est.site_cache.hit").as_u64().unwrap() > 0);

    stop.stop();
    server_thread.join().expect("server thread");
}

#[test]
fn stats_report_cost_program_sharing_across_scenario_shapes() {
    // Two different frame counts are two scenario shapes: neither can
    // reuse the other's stage traces or pooled snapshot, but the cost
    // programs published by the first run warm-start the second. The
    // stats reply must carry the whole `est.prog.*` namespace.
    let svc = service(1, 8);
    let (responder, lines) = Responder::collector();
    svc.handle_line(&sim_line("cold", ALL_CPU0, 1, ""), &responder);
    wait_for_lines(&lines, 1);
    svc.handle_line(&sim_line("warm", ALL_CPU0, 2, ""), &responder);
    wait_for_lines(&lines, 2);
    svc.handle_line(r#"{"op":"stats","id":"st"}"#, &responder);
    let got = wait_for_lines(&lines, 3);
    let reply = got
        .iter()
        .find(|l| l.contains("\"stats\""))
        .expect("stats reply");
    let v = parse(reply).unwrap();
    let m = field(&v, "metrics");
    assert!(field(m, "est.prog.hits").as_u64().unwrap() > 0);
    assert!(field(m, "est.prog.misses").as_u64().unwrap() > 0);
    assert!(
        field(m, "est.prog.published").as_u64().unwrap() > 0,
        "the cold run must publish its programs to the shared cache"
    );
    assert!(
        field(m, "est.prog.warm_hits").as_u64().unwrap() > 0,
        "the second shape must warm-start from published programs: {m:?}"
    );
    assert_eq!(field(m, "est.prog.rejects").as_u64(), Some(0));
    // Both runs answered identically-checksummed output.
    let cold = got.iter().find(|l| l.contains("\"cold\"")).unwrap();
    let warm = got.iter().find(|l| l.contains("\"warm\"")).unwrap();
    let (cv, wv) = (parse(cold).unwrap(), parse(warm).unwrap());
    assert_eq!(field(&cv, "status").as_str(), Some("ok"));
    assert_eq!(field(&wv, "status").as_str(), Some("ok"));
    svc.drain();
}

/// Minimal structural validation of Prometheus text exposition: every
/// line is either a `# TYPE <name> <kind>` comment or a
/// `<name>[{labels}] <float>` sample.
fn assert_valid_exposition(body: &str) {
    assert!(!body.is_empty(), "empty exposition");
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad family name: {line}"
            );
            assert!(
                ["counter", "gauge", "summary"].contains(&kind),
                "bad family kind: {line}"
            );
        } else {
            let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
                panic!("sample line without value: {line}");
            });
            assert!(!name.is_empty(), "empty sample name: {line}");
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "unparseable sample value: {line}"
            );
        }
    }
}

#[test]
fn telemetry_op_exposes_prometheus_text_with_attribution_series() {
    let svc = service(2, 8);
    let (responder, lines) = Responder::collector();
    svc.handle_line(&sim_line("r1", ALL_CPU0, 2, ""), &responder);
    svc.handle_line(&sim_line("r2", MIXED, 2, ""), &responder);
    wait_for_lines(&lines, 2);
    svc.handle_line(r#"{"op":"telemetry","id":"t"}"#, &responder);
    let got = wait_for_lines(&lines, 3);
    let reply = got
        .iter()
        .find(|l| l.contains("\"telemetry\""))
        .expect("telemetry reply");
    let v = parse(reply).unwrap();
    assert_eq!(field(&v, "status").as_str(), Some("ok"));
    assert_eq!(field(&v, "id").as_str(), Some("t"));
    assert_eq!(
        field(&v, "content_type").as_str(),
        Some("text/plain; version=0.0.4")
    );
    let body = field(&v, "body").as_str().expect("body is a string");
    assert_valid_exposition(body);
    // The acceptance triple: kernel scheduling accounting, estimator
    // per-resource contention, and a serve latency quantile series.
    assert!(
        body.lines().any(|l| l.starts_with("kernel_sched_")),
        "no kernel.sched.* series in:\n{body}"
    );
    assert!(
        body.contains("# TYPE est_res_cpu0_busy_ns counter"),
        "no est.res.* series in:\n{body}"
    );
    assert!(
        body.contains("est_res_cpu0_contention_ns"),
        "no contention series in:\n{body}"
    );
    assert!(
        body.contains("# TYPE serve_latency_us summary")
            && body.contains("serve_latency_us{quantile=\"0.99\"}"),
        "no serve latency quantile series in:\n{body}"
    );
    // Folded kernel counters are present and non-zero.
    let deltas: f64 = body
        .lines()
        .find_map(|l| l.strip_prefix("kernel_delta_cycles "))
        .expect("kernel_delta_cycles sample")
        .parse()
        .unwrap();
    assert!(deltas > 0.0);
    svc.drain();
}

#[test]
fn multi_worker_runs_fold_into_one_telemetry_snapshot() {
    // MetricsSnapshot::merge semantics end to end: with the trace
    // cache off, every run of the same scenario is identical, so the
    // 4-worker service's folded counters must be exactly 4x a
    // single run's — counters sum across workers, they don't race or
    // overwrite.
    let config = |workers| ServiceConfig {
        workers,
        queue_capacity: 16,
        use_cache: false,
        ..ServiceConfig::default()
    };
    let one = Service::new(config(1));
    let (responder, lines) = Responder::collector();
    one.handle_line(&sim_line("solo", ALL_CPU0, 2, ""), &responder);
    one.drain();
    assert_eq!(wait_for_lines(&lines, 1).len(), 1);
    let single_deltas = one.telemetry().counter("kernel.delta_cycles").unwrap();
    assert!(single_deltas > 0);

    let many = Service::new(config(4));
    let (responder, lines) = Responder::collector();
    for i in 0..4 {
        many.handle_line(&sim_line(&format!("r{i}"), ALL_CPU0, 2, ""), &responder);
    }
    many.drain();
    assert_eq!(wait_for_lines(&lines, 4).len(), 4);
    let t = many.telemetry();
    assert_eq!(t.counter("kernel.delta_cycles"), Some(4 * single_deltas));
    assert_eq!(
        t.counter("est.res.cpu0.busy_ns"),
        one.telemetry()
            .counter("est.res.cpu0.busy_ns")
            .map(|v| 4 * v)
    );
    // Service-level series ride along un-doubled.
    assert_eq!(t.counter("serve.completed"), Some(4));
}

#[test]
fn stats_op_reports_uptime_and_per_op_counts_and_resets_via_stdio() {
    let svc = service(2, 8);
    let input = format!(
        "{}\n{}\n{}\n",
        r#"{"op":"ping"}"#,
        sim_line("s1", ALL_CPU0, 1, ""),
        r#"{"op":"stats","id":"st1"}"#
    );
    let (responder, lines) = Responder::collector();
    scperf_serve::stdio::serve_reader(&svc, BufReader::new(input.as_bytes()), &responder);
    // serve_reader returned, so the sim has drained; control ops are
    // still answered while draining.
    svc.handle_line(r#"{"op":"stats","id":"st2","reset":true}"#, &responder);
    svc.handle_line(r#"{"op":"stats","id":"st3"}"#, &responder);
    let got = lines.lock().clone();
    assert_eq!(got.len(), 5);
    let by_id = |id: &str| {
        let line = got
            .iter()
            .find(|l| parse(l).unwrap().get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no response for {id}"));
        parse(line).unwrap()
    };
    // Stats answers inline in request order, so st1 saw the ping and
    // the sim admission even if the sim answer came later.
    let st1 = by_id("st1");
    assert!(field(&st1, "uptime_s").as_f64().unwrap() >= 0.0);
    assert!(st1.get("reset").is_none());
    let m1 = field(&st1, "metrics");
    assert_eq!(field(m1, "serve.op.ping").as_u64(), Some(1));
    assert_eq!(field(m1, "serve.op.sim").as_u64(), Some(1));
    assert_eq!(field(m1, "serve.op.stats").as_u64(), Some(1));
    // The read-and-reset reply carries the pre-reset state, sim run
    // included...
    let st2 = by_id("st2");
    assert_eq!(field(&st2, "reset").as_bool(), Some(true));
    let m2 = field(&st2, "metrics");
    assert_eq!(field(m2, "serve.op.stats").as_u64(), Some(2));
    assert_eq!(field(m2, "serve.completed").as_u64(), Some(1));
    assert_eq!(field(m2, "serve.latency.count").as_u64(), Some(1));
    // ...and the next stats sees zeroed history (only itself).
    let st3 = by_id("st3");
    let m3 = field(&st3, "metrics");
    assert_eq!(field(m3, "serve.op.stats").as_u64(), Some(1));
    assert_eq!(field(m3, "serve.op.ping").as_u64(), Some(0));
    assert_eq!(field(m3, "serve.op.sim").as_u64(), Some(0));
    assert_eq!(field(m3, "serve.completed").as_u64(), Some(0));
    assert!(m3.get("serve.latency.count").is_none());
}

#[test]
fn tcp_shutdown_op_stops_the_server() {
    let svc = Arc::new(service(1, 4));
    let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&svc)).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let mut conn = TcpStream::connect(addr).expect("connect");
    writeln!(conn, r#"{{"op":"shutdown"}}"#).unwrap();
    let mut reply = String::new();
    BufReader::new(conn).read_line(&mut reply).unwrap();
    assert!(reply.contains("\"draining\":true"), "got: {reply}");
    // run() returns only after the drain completes.
    server_thread.join().expect("server thread");
    assert!(svc.is_draining());
}

/// A `Read` fed line-by-line from a client thread, so a stdio session
/// can react to responses before deciding what to send next. EOF when
/// the sender hangs up.
struct ChannelReader {
    rx: std::sync::mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl std::io::Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(b) => {
                    self.buf = b;
                    self.pos = 0;
                }
                Err(_) => return Ok(0),
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn a_queue_full_client_retries_after_the_hint_and_succeeds() {
    // One worker, capacity one: a slow request monopolizes the
    // service, the follow-up is rejected with `queue_full` and a
    // `retry_after_ms` hint, and honouring the hint eventually gets it
    // through — the full backpressure contract, over the real stdio
    // frontend.
    let svc = service(1, 1);
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
    let (responder, lines) = Responder::collector();

    let client_lines = Arc::clone(&lines);
    let client = std::thread::spawn(move || {
        let send = |s: String| {
            let _ = tx.send(format!("{s}\n").into_bytes());
        };
        send(sim_line("slow", ALL_CPU0, 64, ""));
        send(sim_line("r1", MIXED, 1, ""));
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut seen = 0;
        let mut rejections = 0_u32;
        loop {
            assert!(Instant::now() < deadline, "r1 never completed");
            let got = client_lines.lock().clone();
            for line in &got[seen..] {
                let v = parse(line).unwrap();
                if v.get("id").and_then(Json::as_str) != Some("r1") {
                    continue;
                }
                if field(&v, "status").as_str() == Some("ok") {
                    send(r#"{"op":"shutdown","id":"bye"}"#.into());
                    return rejections;
                }
                assert_eq!(field(&v, "code").as_str(), Some("queue_full"));
                let hint = field(&v, "retry_after_ms").as_u64().unwrap();
                assert!(hint >= 1);
                rejections += 1;
                std::thread::sleep(Duration::from_millis(hint));
                send(sim_line("r1", MIXED, 1, ""));
            }
            seen = got.len();
            std::thread::sleep(Duration::from_millis(1));
        }
    });

    let reader = ChannelReader {
        rx,
        buf: Vec::new(),
        pos: 0,
    };
    scperf_serve::stdio::serve_reader(&svc, BufReader::new(reader), &responder);
    let rejections = client.join().unwrap();
    assert!(rejections >= 1, "the first r1 must have been rejected");
    let got = lines.lock().clone();
    let oks = got
        .iter()
        .filter(|l| l.contains(r#""id":"r1""#) && l.contains(r#""status":"ok""#))
        .count();
    assert_eq!(oks, 1, "exactly one r1 success: {got:?}");
}

#[test]
fn an_exhausted_session_pool_rejects_with_a_retry_hint() {
    // More workers than pool slots: concurrent requests contend for
    // the single session, the losers get `pool_exhausted` with a retry
    // hint, and a retry after the traffic clears succeeds.
    let mut config = ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        retry_after_ms: 25,
        ..ServiceConfig::default()
    };
    config.pool_sessions = Some(1);
    let svc = Service::new(config);
    let (responder, lines) = Responder::collector();
    for i in 0..4 {
        svc.handle_line(&sim_line(&format!("r{i}"), ALL_CPU0, 64, ""), &responder);
    }
    let got = wait_for_lines(&lines, 4);
    let exhausted: Vec<&String> = got
        .iter()
        .filter(|l| l.contains(r#""code":"pool_exhausted""#))
        .collect();
    assert!(
        !exhausted.is_empty(),
        "two workers racing one slot must collide: {got:?}"
    );
    for line in &exhausted {
        let v = parse(line).unwrap();
        assert!(field(&v, "retry_after_ms").as_u64().unwrap() >= 1);
    }
    // A rejected slot was never poisoned: a retry runs clean and
    // matches the successful runs bit for bit.
    lines.lock().clear();
    svc.handle_line(&sim_line("again", ALL_CPU0, 64, ""), &responder);
    let retry = wait_for_lines(&lines, 1);
    let v = parse(&retry[0]).unwrap();
    assert_eq!(field(&v, "status").as_str(), Some("ok"), "{retry:?}");
    let expect = got
        .iter()
        .find(|l| l.contains(r#""status":"ok""#))
        .map(|l| field(&parse(l).unwrap(), "end_time_ps").as_u64().unwrap())
        .expect("at least one of the four succeeded");
    assert_eq!(field(&v, "end_time_ps").as_u64(), Some(expect));
    svc.drain();
    let m = svc.metrics();
    assert!(m.counter("pool.exhausted").unwrap() >= 1, "{m}");
}

#[test]
fn retry_hints_derive_from_observed_run_durations() {
    // An implausible configured default proves the hint switches to
    // the observed p90 once any run has completed.
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 777_777,
        ..ServiceConfig::default()
    });
    let (responder, lines) = Responder::collector();
    // Before any completion the default is all we have.
    svc.handle_line(&sim_line("s1", ALL_CPU0, 64, ""), &responder);
    svc.handle_line(&sim_line("rej1", MIXED, 1, ""), &responder);
    let got = wait_for_lines(&lines, 1);
    let early = got
        .iter()
        .find(|l| l.contains(r#""code":"queue_full""#))
        .expect("rej1 bounced");
    assert_eq!(
        field(&parse(early).unwrap(), "retry_after_ms").as_u64(),
        Some(777_777)
    );
    svc.drain();
    // s1 completed; hints now follow its observed duration.
    // (drain() only stops admission for *requests*; metrics and the
    // saturation math keep working, so probe via a fresh service call.)
    let m = svc.metrics();
    assert!(m.counter("serve.completed").unwrap() >= 1, "{m}");
    let p90_us = m.gauge("serve.run.p90_us").unwrap();
    let hinted = ((p90_us / 1e3).ceil() as u64).max(1);
    assert!(
        hinted < 777_777,
        "a real run duration must beat the sentinel: {m}"
    );
}
